//! Shared request-sequencing engine.
//!
//! Every controller decomposes a memory request into DRAM *legs* (an
//! HBM probe, a DDR read, a fill write, a victim writeback, …). The
//! engine tracks which legs gate the reply data, which legs are
//! deferred until the probe returns (Alloy's serialized miss path), and
//! retires the request when its data legs finish.
//!
//! Functional decisions (hit/miss, victim choice, version bookkeeping)
//! are made by the policy at submit time; the legs model the *timing*
//! of those decisions on the two DRAM interfaces (DESIGN.md §3.3).

use crate::controller::{meta, unmeta, CompletedReq, MemorySides};
use redcache_dram::TxnKind;
use redcache_types::{AccessKind, Cycle, MemRequest, PhysAddr};
use std::collections::HashMap;

/// One DRAM access belonging to a request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LegSpec {
    /// Leg index, unique within the request (0..8).
    pub leg: u8,
    /// Target the HBM side (true) or the DDR side (false).
    pub hbm: bool,
    /// Transaction direction.
    pub kind: TxnKind,
    /// Target address (HBM-internal or DDR physical).
    pub addr: PhysAddr,
    /// Burst count.
    pub bursts: u32,
    /// Whether the reply data waits for this leg.
    pub gates_data: bool,
    /// Issue only after leg 0 (the probe) completes.
    pub deferred: bool,
}

#[derive(Debug)]
struct Op {
    req: MemRequest,
    version: u64,
    all_mask: u8,
    done_mask: u8,
    data_mask: u8,
    deferred: Vec<LegSpec>,
    replied: bool,
    data_at: Cycle,
}

/// A leg-completion event exposed to the policy for extra behaviour
/// (e.g. RedCache's RCU enqueue on read-hit probes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LegEvent {
    /// Engine op id.
    pub op: u64,
    /// Leg that finished.
    pub leg: u8,
    /// Completion cycle.
    pub done_at: Cycle,
}

/// The sequencing engine: op table plus leg dispatch.
#[derive(Debug, Default)]
pub(crate) struct Engine {
    ops: HashMap<u64, Op>,
    next_op: u64,
    events: Vec<LegEvent>,
}

impl Engine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of requests not yet fully retired.
    pub fn pending(&self) -> usize {
        self.ops.len()
    }

    /// Starts a request with reply version `version` and the given legs.
    /// Legs with `deferred` wait for leg 0. A request with no
    /// data-gating legs replies immediately (e.g. a pure bypassed
    /// writeback still waits for its single leg if that leg gates).
    ///
    /// Returns the op id.
    pub fn start(
        &mut self,
        req: MemRequest,
        version: u64,
        legs: &[LegSpec],
        sides: &mut MemorySides,
        now: Cycle,
        done: &mut Vec<CompletedReq>,
    ) -> u64 {
        let id = self.next_op;
        self.next_op += 1;
        let mut op = Op {
            req,
            version,
            all_mask: 0,
            done_mask: 0,
            data_mask: 0,
            deferred: Vec::new(),
            replied: false,
            data_at: now,
        };
        for l in legs {
            op.all_mask |= 1 << l.leg;
            if l.gates_data {
                op.data_mask |= 1 << l.leg;
            }
            if l.deferred {
                op.deferred.push(*l);
            }
        }
        for l in legs.iter().filter(|l| !l.deferred) {
            Self::issue(id, l, sides, now);
        }
        if op.data_mask == 0 {
            Self::reply(&mut op, now, done);
        }
        if op.all_mask == 0 {
            // Fully synchronous request (e.g. served from the RCU block
            // cache): retire immediately.
            return id;
        }
        self.ops.insert(id, op);
        id
    }

    fn issue(id: u64, l: &LegSpec, sides: &mut MemorySides, now: Cycle) {
        let side = if l.hbm {
            &mut sides.hbm
        } else {
            &mut sides.ddr
        };
        side.issue(l.addr, l.kind, meta(id, l.leg), l.bursts, now);
    }

    fn reply(op: &mut Op, at: Cycle, done: &mut Vec<CompletedReq>) {
        if op.replied {
            return;
        }
        op.replied = true;
        done.push(CompletedReq {
            id: op.req.id,
            line: op.req.line,
            kind: op.req.kind,
            data_version: if op.req.kind == AccessKind::Read {
                op.version
            } else {
                op.req.data_version
            },
            issued_at: op.req.issued_at,
            done_at: at,
        });
    }

    /// Routes one DRAM completion to its op. Returns true if the meta
    /// tag belonged to this engine.
    pub fn on_completion(
        &mut self,
        m: u64,
        done_at: Cycle,
        sides: &mut MemorySides,
        done: &mut Vec<CompletedReq>,
    ) -> bool {
        let (id, leg) = unmeta(m);
        let Some(op) = self.ops.get_mut(&id) else {
            return false;
        };
        op.done_mask |= 1 << leg;
        if op.data_mask & (1 << leg) != 0 {
            op.data_at = op.data_at.max(done_at);
        }
        self.events.push(LegEvent {
            op: id,
            leg,
            done_at,
        });
        // Probe finished: release deferred legs.
        if leg == 0 {
            let deferred = std::mem::take(&mut op.deferred);
            for l in &deferred {
                Self::issue(id, l, sides, done_at);
            }
        }
        // All data legs finished: reply.
        if !op.replied && op.done_mask & op.data_mask == op.data_mask {
            let at = op.data_at;
            Self::reply(op, at, done);
        }
        // Fully retired?
        if op.done_mask == op.all_mask && op.deferred.is_empty() {
            // Reply must have happened (data_mask ⊆ all_mask).
            self.ops.remove(&id);
        }
        true
    }

    /// Takes this tick's leg events for policy-specific postprocessing.
    pub fn take_events(&mut self) -> Vec<LegEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Standard leg indices used by the concrete policies.
pub(crate) mod legs {
    /// HBM tag-and-data probe.
    pub const PROBE: u8 = 0;
    /// DDR data read.
    pub const DDR_READ: u8 = 1;
    /// HBM data/fill write.
    pub const HBM_WRITE: u8 = 2;
    /// DDR write (victim writeback or routed write).
    pub const DDR_WRITE: u8 = 3;
    /// HBM r-count update write (Red-Basic's immediate update).
    pub const RCU_WRITE: u8 = 4;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{PolicyConfig, PolicyKind};
    use redcache_types::{CoreId, LineAddr, ReqId};

    fn sides() -> MemorySides {
        MemorySides::new(&PolicyConfig::scaled(PolicyKind::Alloy))
    }

    fn run(
        sides: &mut MemorySides,
        eng: &mut Engine,
        done: &mut Vec<CompletedReq>,
        mut now: Cycle,
    ) -> Cycle {
        while eng.pending() > 0 {
            sides.hbm.tick(now);
            sides.ddr.tick(now);
            let mut buf = Vec::new();
            sides.hbm.drain_completions_into(&mut buf);
            for c in &buf {
                eng.on_completion(c.meta, c.done_at, sides, done);
            }
            buf.clear();
            sides.ddr.drain_completions_into(&mut buf);
            for c in &buf {
                eng.on_completion(c.meta, c.done_at, sides, done);
            }
            now += 1;
            assert!(now < 1_000_000, "engine deadlock");
        }
        now
    }

    #[test]
    fn parallel_legs_reply_at_max() {
        let mut s = sides();
        let mut eng = Engine::new();
        let mut done = Vec::new();
        let req = MemRequest::read(ReqId(1), LineAddr::new(4), CoreId(0), 0);
        eng.start(
            req,
            9,
            &[
                LegSpec {
                    leg: legs::PROBE,
                    hbm: true,
                    kind: TxnKind::Read,
                    addr: PhysAddr::new(0),
                    bursts: 1,
                    gates_data: true,
                    deferred: false,
                },
                LegSpec {
                    leg: legs::DDR_READ,
                    hbm: false,
                    kind: TxnKind::Read,
                    addr: PhysAddr::new(0),
                    bursts: 1,
                    gates_data: true,
                    deferred: false,
                },
            ],
            &mut s,
            0,
            &mut done,
        );
        run(&mut s, &mut eng, &mut done, 0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].data_version, 9);
        assert!(done[0].done_at > 0);
    }

    #[test]
    fn deferred_leg_waits_for_probe() {
        let mut s = sides();
        let mut eng = Engine::new();
        let mut done = Vec::new();
        let req = MemRequest::read(ReqId(2), LineAddr::new(4), CoreId(0), 0);
        eng.start(
            req,
            5,
            &[
                LegSpec {
                    leg: legs::PROBE,
                    hbm: true,
                    kind: TxnKind::Read,
                    addr: PhysAddr::new(0),
                    bursts: 1,
                    gates_data: false,
                    deferred: false,
                },
                LegSpec {
                    leg: legs::DDR_READ,
                    hbm: false,
                    kind: TxnKind::Read,
                    addr: PhysAddr::new(0),
                    bursts: 1,
                    gates_data: true,
                    deferred: true,
                },
            ],
            &mut s,
            0,
            &mut done,
        );
        run(&mut s, &mut eng, &mut done, 0);
        assert_eq!(done.len(), 1);
        // Serialized: total latency exceeds a lone DDR read's.
        let probe_then_read = done[0].done_at;
        let mut s2 = sides();
        let mut eng2 = Engine::new();
        let mut done2 = Vec::new();
        eng2.start(
            MemRequest::read(ReqId(3), LineAddr::new(4), CoreId(0), 0),
            5,
            &[LegSpec {
                leg: legs::DDR_READ,
                hbm: false,
                kind: TxnKind::Read,
                addr: PhysAddr::new(0),
                bursts: 1,
                gates_data: true,
                deferred: false,
            }],
            &mut s2,
            0,
            &mut done2,
        );
        run(&mut s2, &mut eng2, &mut done2, 0);
        assert!(probe_then_read > done2[0].done_at);
    }

    #[test]
    fn writeback_reply_carries_write_version() {
        let mut s = sides();
        let mut eng = Engine::new();
        let mut done = Vec::new();
        let req = MemRequest::writeback(ReqId(4), LineAddr::new(4), CoreId(0), 0, 77);
        eng.start(
            req,
            0,
            &[LegSpec {
                leg: legs::DDR_WRITE,
                hbm: false,
                kind: TxnKind::Write,
                addr: PhysAddr::new(0),
                bursts: 1,
                gates_data: true,
                deferred: false,
            }],
            &mut s,
            0,
            &mut done,
        );
        run(&mut s, &mut eng, &mut done, 0);
        assert_eq!(done[0].data_version, 77);
    }

    #[test]
    fn no_legs_replies_immediately_and_retires() {
        let mut s = sides();
        let mut eng = Engine::new();
        let mut done = Vec::new();
        let req = MemRequest::read(ReqId(5), LineAddr::new(4), CoreId(0), 3);
        eng.start(req, 11, &[], &mut s, 3, &mut done);
        assert_eq!(eng.pending(), 0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].done_at, 3);
        assert_eq!(done[0].data_version, 11);
    }

    #[test]
    fn non_gating_legs_do_not_delay_reply() {
        // Same legs, once with the writes gating the data and once
        // without: the non-gating reply must be at least as early.
        let run_with = |write_gates: bool| -> Cycle {
            let mut s = sides();
            let mut eng = Engine::new();
            let mut done = Vec::new();
            let req = MemRequest::read(ReqId(6), LineAddr::new(4), CoreId(0), 0);
            eng.start(
                req,
                1,
                &[
                    LegSpec {
                        leg: legs::PROBE,
                        hbm: true,
                        kind: TxnKind::Read,
                        addr: PhysAddr::new(0),
                        bursts: 1,
                        gates_data: true,
                        deferred: false,
                    },
                    LegSpec {
                        leg: legs::HBM_WRITE,
                        hbm: true,
                        kind: TxnKind::Write,
                        addr: PhysAddr::new(64),
                        bursts: 1,
                        gates_data: write_gates,
                        deferred: false,
                    },
                    LegSpec {
                        leg: legs::DDR_WRITE,
                        hbm: false,
                        kind: TxnKind::Write,
                        addr: PhysAddr::new(0),
                        bursts: 1,
                        gates_data: write_gates,
                        deferred: false,
                    },
                ],
                &mut s,
                0,
                &mut done,
            );
            run(&mut s, &mut eng, &mut done, 0);
            done[0].done_at
        };
        let free_running = run_with(false);
        let gated = run_with(true);
        assert!(
            free_running < gated,
            "non-gating legs must not delay the reply ({free_running} vs {gated})"
        );
    }
}
