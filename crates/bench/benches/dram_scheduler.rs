//! Criterion micro-benchmark: DRAM command-scheduler throughput under
//! row-hit streams, random conflicts, mixed read/write traffic, and
//! three adversarial queue mixes that stress the indexed kernel's weak
//! spots — precharge/activate churn (`row_conflict_storm`), the
//! write-drain hysteresis (`write_drain_saturation`), and a single
//! bank's pending list while every other bank idles
//! (`single_bank_hotspot`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redcache_dram::{DramConfig, DramSystem, TxnKind};
use redcache_types::PhysAddr;
use std::time::Duration;

fn run_pattern(cfg: DramConfig, addrs: &[(u64, bool)]) -> u64 {
    let cap = cfg.topology.capacity_bytes();
    let mut d = DramSystem::new(cfg);
    let mut now = 0u64;
    let mut it = addrs.iter();
    let mut next = it.next();
    while next.is_some() || d.pending() > 0 {
        if now % 4 == 0 {
            if let Some(&(a, w)) = next {
                let kind = if w { TxnKind::Write } else { TxnKind::Read };
                d.enqueue(PhysAddr::new(a % cap), kind, 0, 1, now);
                next = it.next();
            }
        }
        d.tick(now);
        now += 1;
    }
    now
}

fn patterns(n: usize) -> Vec<(&'static str, Vec<(u64, bool)>)> {
    let sequential: Vec<_> = (0..n as u64).map(|i| (i * 64, i % 4 == 0)).collect();
    let random: Vec<_> = (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (x % (1 << 26), x % 3 == 0)
        })
        .collect();
    let hot_rows: Vec<_> = (0..n as u64)
        .map(|i| ((i % 8) * (1 << 20) + (i / 8) * 64, false))
        .collect();
    // Ping-pong across four rows that alias into the same banks: every
    // access conflicts, so the scheduler lives in pass 2 (PRE/ACT prep)
    // and the open-row hit counters are recomputed constantly.
    let row_conflict_storm: Vec<_> = (0..n as u64)
        .map(|i| ((i % 4) * (16 << 20) + (i / 4) * 64, i % 7 == 0))
        .collect();
    // Pure store traffic: the pending-write watermark crosses the drain
    // thresholds over and over, exercising both hysteresis latches and
    // the write arm of the column-command pass.
    let write_drain_saturation: Vec<_> = (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (x % (1 << 24), true)
        })
        .collect();
    // Everything lands in one bank: its pending list holds the whole
    // scheduler window while every other bank stays empty, the worst
    // case for per-bank bookkeeping overhead.
    let single_bank_hotspot: Vec<_> = (0..n as u64)
        .map(|i| {
            let conflict = if i % 16 == 0 { 16 << 20 } else { 0 };
            (conflict + (i % 256) * 64, i % 5 == 0)
        })
        .collect();
    vec![
        ("sequential", sequential),
        ("random", random),
        ("hot_rows", hot_rows),
        ("row_conflict_storm", row_conflict_storm),
        ("write_drain_saturation", write_drain_saturation),
        ("single_bank_hotspot", single_bank_hotspot),
    ]
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_scheduler");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for (name, addrs) in patterns(2_000) {
        group.bench_with_input(BenchmarkId::new("ddr4", name), &addrs, |b, a| {
            b.iter(|| run_pattern(DramConfig::ddr4_scaled(64 << 20), a))
        });
        group.bench_with_input(BenchmarkId::new("wideio", name), &addrs, |b, a| {
            b.iter(|| run_pattern(DramConfig::wideio_scaled(8 << 20), a))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
