//! The policy-independent **warmup fill controller** (DESIGN.md §3.13).
//!
//! Warm-fork runs every workload's warmup phase exactly once, then forks
//! the snapshot into each policy run. For the fork to be legal the
//! warmup must not depend on the policy being measured, so this
//! controller routes every request the No-HBM way — reads and
//! writebacks go straight to DDR4 — while still **ticking the WideIO
//! side** so its refresh counters and bank timing advance exactly as
//! they would under any policy that had issued no HBM traffic. At the
//! fork point both DRAM systems are quiescent and
//! [`FillController::capture_warm`] hands the complete memory state to
//! the simulator's snapshot.
//!
//! The HBM *contents* deliberately stay empty: every forked policy
//! starts from a cold cache with warm main memory, timing state and
//! core/hierarchy state, which is what makes fork-vs-scratch runs
//! bit-exact (the scratch path warms under this same controller).

use crate::controller::{
    CompletedReq, ControllerGauges, ControllerStats, DramCacheController, MemorySides,
    PolicyConfig, PolicyKind, WarmMemoryState,
};
use crate::engine::{legs, Engine, LegSpec};
use redcache_dram::{AuditStats, DramStats, TxnKind};
use redcache_types::{AccessKind, Cycle, LineAddr, MemRequest};

/// Controller used for the shared, policy-independent warmup phase.
#[derive(Debug)]
pub struct FillController {
    sides: MemorySides,
    engine: Engine,
    stats: ControllerStats,
    compl_buf: Vec<redcache_dram::Completion>,
}

impl FillController {
    /// Builds the fill controller from the same configuration the policy
    /// runs will use (both DRAM sides are constructed, so the captured
    /// warm state matches the policies' topologies).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: &PolicyConfig) -> Self {
        cfg.validate().expect("invalid policy config");
        Self {
            sides: MemorySides::new(cfg),
            engine: Engine::new(),
            stats: ControllerStats::default(),
            compl_buf: Vec::new(),
        }
    }

    /// Captures the warm memory state at the fork point. Call only when
    /// [`DramCacheController::pending`] is zero — the snapshot does not
    /// carry request-machine state.
    pub fn capture_warm(&self) -> WarmMemoryState {
        debug_assert_eq!(self.engine.pending(), 0, "fork point must be quiescent");
        self.sides.capture_warm()
    }
}

impl DramCacheController for FillController {
    fn submit(&mut self, req: MemRequest, now: Cycle) {
        self.sides.sync_to(now);
        self.stats.submitted += 1;
        let addr = self.sides.ddr_addr(req.line);
        let mut done = Vec::new();
        match req.kind {
            AccessKind::Read => {
                self.stats.ddr_reads += 1;
                let version = self.sides.ddr_version(req.line);
                self.engine.start(
                    req,
                    version,
                    &[LegSpec {
                        leg: legs::DDR_READ,
                        hbm: false,
                        kind: TxnKind::Read,
                        addr,
                        bursts: 1,
                        gates_data: true,
                        deferred: false,
                    }],
                    &mut self.sides,
                    now,
                    &mut done,
                );
            }
            AccessKind::Writeback => {
                self.stats.ddr_writes += 1;
                self.sides.ddr_store(req.line, req.data_version);
                self.engine.start(
                    req,
                    0,
                    &[LegSpec {
                        leg: legs::DDR_WRITE,
                        hbm: false,
                        kind: TxnKind::Write,
                        addr,
                        bursts: 1,
                        gates_data: true,
                        deferred: false,
                    }],
                    &mut self.sides,
                    now,
                    &mut done,
                );
            }
        }
        debug_assert!(done.is_empty());
    }

    fn tick(&mut self, now: Cycle, done: &mut Vec<CompletedReq>) {
        // Unlike No-HBM, the WideIO side ticks too: its refresh windows
        // and rank timing must be at their natural positions when a
        // policy adopts the warm state.
        self.sides.hbm.tick(now);
        self.sides.ddr.tick(now);
        let before = done.len();
        let mut buf = std::mem::take(&mut self.compl_buf);
        self.sides.ddr.drain_completions_into(&mut buf);
        for c in &buf {
            self.engine
                .on_completion(c.meta, c.done_at, &mut self.sides, done);
        }
        buf.clear();
        self.compl_buf = buf;
        let _ = self.engine.take_events();
        for d in &done[before..] {
            self.stats.completed += 1;
            if d.kind == AccessKind::Read {
                self.stats.reads_completed += 1;
                self.stats.read_latency_sum += d.latency();
            }
        }
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        // Both sides tick, so the horizon is the earlier of the two:
        // skipping past an HBM refresh boundary would desynchronise the
        // warm state from a cycle-by-cycle run.
        self.sides
            .ddr
            .sys
            .next_event(now)
            .min(self.sides.hbm.sys.next_event(now))
    }

    fn pending(&self) -> usize {
        self.engine.pending()
    }

    fn stats(&self) -> ControllerStats {
        self.stats
    }

    fn hbm_stats(&self) -> Option<DramStats> {
        None
    }

    fn ddr_stats(&self) -> DramStats {
        *self.sides.ddr.sys.stats()
    }

    fn ddr_audit(&self) -> Option<AuditStats> {
        self.sides.ddr_audit()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::NoHbm
    }

    fn preload(&mut self, line: LineAddr, version: u64) {
        self.sides.ddr_store(line, version);
    }

    fn gauges(&self) -> ControllerGauges {
        self.sides.dram_gauges()
    }

    fn reset_stats(&mut self) {
        self.stats = ControllerStats::default();
        self.sides.ddr.sys.reset_stats();
        self.sides.hbm.sys.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_types::{CoreId, ReqId};

    fn drive(c: &mut FillController, from: Cycle) -> (Vec<CompletedReq>, Cycle) {
        let mut done = Vec::new();
        let mut now = from;
        while c.pending() > 0 {
            c.tick(now, &mut done);
            now += 1;
            assert!(now < 1_000_000);
        }
        (done, now)
    }

    #[test]
    fn routes_like_nohbm_and_returns_versions() {
        let cfg = PolicyConfig::scaled(PolicyKind::NoHbm);
        let mut c = FillController::new(&cfg);
        c.preload(LineAddr::new(10), 123);
        c.submit(
            MemRequest::read(ReqId(1), LineAddr::new(10), CoreId(0), 0),
            0,
        );
        let (done, _) = drive(&mut c, 0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].data_version, 123);
        assert_eq!(c.stats().ddr_reads, 1);
        assert_eq!(c.stats().hbm_probes, 0);
    }

    #[test]
    fn warm_capture_round_trips_into_a_policy_controller() {
        use redcache_types::Snapshot as _;
        let cfg = PolicyConfig::scaled(PolicyKind::Alloy);
        let mut fill = FillController::new(&cfg);
        fill.submit(
            MemRequest::writeback(ReqId(1), LineAddr::new(5), CoreId(0), 0, 42),
            0,
        );
        let (_, end) = drive(&mut fill, 0);
        let warm = fill.capture_warm();
        assert_eq!(warm.ddr_versions.get(&5).copied(), Some(42));

        // A fresh Alloy controller adopting the warm state continues
        // from the warmed DDR timing position and serves the stored
        // version.
        let mut alloy = crate::AlloyController::new(&cfg);
        assert!(alloy.supports_warm_fork());
        alloy.adopt_warm(&warm);
        let mut scratch = crate::AlloyController::new(&cfg);
        scratch.adopt_warm(&warm);
        let mut done_a = Vec::new();
        let mut done_b = Vec::new();
        alloy.submit(
            MemRequest::read(ReqId(2), LineAddr::new(5), CoreId(0), end),
            end,
        );
        scratch.submit(
            MemRequest::read(ReqId(2), LineAddr::new(5), CoreId(0), end),
            end,
        );
        let mut now = end;
        while alloy.pending() > 0 || scratch.pending() > 0 {
            alloy.tick(now, &mut done_a);
            scratch.tick(now, &mut done_b);
            now += 1;
            assert!(now < end + 1_000_000);
        }
        assert_eq!(done_a, done_b, "adoption is deterministic");
        assert_eq!(done_a[0].data_version, 42);

        // The warm snapshot itself is unperturbed by the adoptions.
        let again = fill.capture_warm();
        let mut b1 = Vec::new();
        let mut b2 = Vec::new();
        redcache_types::wire::Wire::put(&warm, &mut b1);
        redcache_types::wire::Wire::put(&again, &mut b2);
        assert_eq!(b1, b2);
        let _ = fill.sides.hbm.sys.snapshot(); // still usable
    }

    #[test]
    fn hbm_refresh_state_advances_during_warmup() {
        let cfg = PolicyConfig::scaled(PolicyKind::NoHbm);
        let mut c = FillController::new(&cfg);
        let mut done = Vec::new();
        let horizon = c.next_event(0);
        for now in 0..horizon + 1 {
            c.tick(now, &mut done);
        }
        // Ticking past the first horizon must have moved it.
        assert!(c.next_event(horizon + 1) > horizon);
    }
}
