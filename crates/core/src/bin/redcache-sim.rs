//! `redcache-sim` — command-line driver for single simulations.
//!
//! ```text
//! redcache-sim [--workload RDX] [--policy redcache] [--budget 50000]
//!              [--shrink 1] [--block 64] [--preset scaled|quick]
//!              [--warmup 0.3] [--snapshot-dir DIR] [--json]
//!              [--import TRACE] [--tenants W1] [--tenants W1,W2[:R1,R2]]
//! ```
//!
//! Policies: whatever the policy registry declares — currently nohbm |
//! ideal | alloy | bear | red-alpha | red-gamma | red-basic |
//! red-insitu | redcache | fbr (run `--help` for the live list).
//!
//! `--import` replaces the generated workload with an external trace:
//! a text file of `addr,rw[,tid]` lines, an `.rcti` envelope, or a raw
//! `.rctr` trace (see `redcache_workloads::import`). `--tenants`
//! deterministically interleaves several workloads through one DRAM
//! cache (DESIGN.md §3.15): `--tenants KVZ,HIST` is round-robin,
//! `--tenants KVZ,HIST:3,1` weights the slot schedule 3:1; the report's
//! extras then carry per-tenant traffic and hit counters.
//!
//! `--snapshot-dir` persists the post-warmup simulator state to disk
//! (keyed by trace content and warm-relevant configuration, like the
//! `REDCACHE_TRACE_CACHE_DIR` trace cache): later invocations that only
//! change the policy or its knobs skip the warmup entirely. Defaults to
//! the `REDCACHE_SNAPSHOT_DIR` environment variable when set.

use redcache::{snapshot_io, PolicyKind, RedVariant, RunReport, SimConfig, Simulator};
use redcache_types::TenantSchedule;
use redcache_workloads::{import, multitenant, GenConfig, SharedTraces, Workload};
use std::path::PathBuf;

struct Args {
    workload: Workload,
    policy: PolicyKind,
    budget: usize,
    shrink: usize,
    block: usize,
    preset: String,
    warmup: f64,
    snapshot_dir: Option<PathBuf>,
    json: bool,
    import: Option<PathBuf>,
    tenants: Option<(Vec<Workload>, Vec<u8>)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: redcache-sim [--workload LABEL] [--policy NAME] [--budget N]\n\
         \x20                  [--shrink N] [--block 64|128|256] [--preset scaled|quick]\n\
         \x20                  [--warmup F] [--snapshot-dir DIR] [--json]\n\
         \x20                  [--import TRACE(.txt|.rcti|.rctr)]\n\
         \x20                  [--tenants W1,W2[,..][:R1,R2[,..]]]\n\
         workloads: {}\n\
         policies:  {}",
        Workload::ALL.map(|w| w.info().label).join(" "),
        redcache::policy_registry::known_names().join(" ")
    );
    std::process::exit(2)
}

/// Parses `--tenants KVZ,HIST` or `--tenants KVZ,HIST:3,1` into the
/// workload list and its slot-ratio (all ones when omitted).
fn parse_tenants(spec: &str) -> Option<(Vec<Workload>, Vec<u8>)> {
    let (wl, ratio) = match spec.split_once(':') {
        Some((wl, r)) => (wl, Some(r)),
        None => (spec, None),
    };
    let workloads: Vec<Workload> = wl
        .split(',')
        .map(|s| s.trim().parse().ok())
        .collect::<Option<_>>()?;
    let ratio: Vec<u8> = match ratio {
        Some(r) => r
            .split(',')
            .map(|s| s.trim().parse().ok())
            .collect::<Option<_>>()?,
        None => vec![1; workloads.len()],
    };
    if workloads.is_empty() || workloads.len() != ratio.len() {
        return None;
    }
    Some((workloads, ratio))
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: Workload::Hist,
        policy: PolicyKind::Red(RedVariant::Full),
        budget: 50_000,
        shrink: 1,
        block: 64,
        preset: "scaled".into(),
        warmup: 0.3,
        snapshot_dir: std::env::var_os("REDCACHE_SNAPSHOT_DIR").map(PathBuf::from),
        json: false,
        import: None,
        tenants: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--workload" | "-w" => {
                args.workload = val().parse().unwrap_or_else(|_| usage());
            }
            "--policy" | "-p" => args.policy = val().parse().unwrap_or_else(|_| usage()),
            "--budget" | "-b" => args.budget = val().parse().unwrap_or_else(|_| usage()),
            "--shrink" | "-s" => args.shrink = val().parse().unwrap_or_else(|_| usage()),
            "--block" => args.block = val().parse().unwrap_or_else(|_| usage()),
            "--preset" => args.preset = val(),
            "--warmup" => args.warmup = val().parse().unwrap_or_else(|_| usage()),
            "--snapshot-dir" => args.snapshot_dir = Some(PathBuf::from(val())),
            "--json" => args.json = true,
            "--import" => args.import = Some(PathBuf::from(val())),
            "--tenants" => args.tenants = Some(parse_tenants(&val()).unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.import.is_some() && args.tenants.is_some() {
        eprintln!("--import and --tenants are mutually exclusive");
        usage();
    }
    args
}

fn print_human(r: &RunReport) {
    println!("policy             {}", r.policy);
    println!(
        "workload           {}",
        r.workload.as_deref().unwrap_or("?")
    );
    println!("execution time     {} cycles", r.cycles);
    println!("instructions       {} (IPC {:.2})", r.instructions, r.ipc());
    println!("mem reads / wbs    {} / {}", r.mem_reads, r.mem_writebacks);
    println!("HBM hit rate       {:.1}%", r.hbm_hit_rate() * 100.0);
    if let Some(h) = &r.hbm {
        println!(
            "WideIO             {} bytes, row-hit {:.1}%, bus busy {} cyc",
            h.bytes_total(),
            h.row_hit_rate() * 100.0,
            h.bus_busy_cycles
        );
    }
    println!(
        "DDR                {} bytes, row-hit {:.1}%, bus busy {} cyc",
        r.ddr.bytes_total(),
        r.ddr.row_hit_rate() * 100.0,
        r.ddr.bus_busy_cycles
    );
    println!("mean read latency  {:.0} cycles", r.ctl.mean_read_latency());
    println!(
        "energy             HBM {:.4} mJ | DDR {:.4} mJ | CPU {:.4} mJ | total {:.4} mJ",
        r.energy.hbm.total_j() * 1e3,
        r.energy.ddr.total_j() * 1e3,
        r.energy.cpu.total_j() * 1e3,
        r.energy.total_j() * 1e3,
    );
    for (k, v) in &r.extras {
        println!("  {k:<24} {v:.3}");
    }
    println!("shadow violations  {}", r.shadow_violations);
}

fn main() {
    let a = parse_args();
    let mut gen = GenConfig::scaled();
    gen.budget_per_thread = a.budget;
    gen.shrink = a.shrink;
    let mut cfg = SimConfig::preset(&a.preset, a.policy).unwrap_or_else(|| usage());
    cfg.policy.cache_block_bytes = a.block;
    cfg.warmup_fraction = a.warmup;
    if cfg.hierarchy.cores < gen.threads {
        gen.threads = cfg.hierarchy.cores;
    }

    // Resolve the trace source: an imported external trace, a
    // multi-tenant weave, or the plain generated workload.
    let (traces, label): (SharedTraces, String) = if let Some(path) = &a.import {
        let traces = import::load_any(path).unwrap_or_else(|e| {
            eprintln!("cannot import {}: {e}", path.display());
            std::process::exit(2);
        });
        let label = path
            .file_stem()
            .map(|s| s.to_string_lossy().to_uppercase())
            .unwrap_or_else(|| "IMPORT".into());
        (traces.into(), label)
    } else if let Some((workloads, ratio)) = &a.tenants {
        let sched = TenantSchedule::ratio(ratio).unwrap_or_else(|e| {
            eprintln!("bad tenant schedule: {e}");
            std::process::exit(2);
        });
        cfg.tenancy = Some(sched);
        let per_tenant: Vec<_> = workloads.iter().map(|w| w.generate(&gen)).collect();
        let label = workloads
            .iter()
            .map(|w| w.info().label)
            .collect::<Vec<_>>()
            .join("+");
        (multitenant::weave(&per_tenant, &sched).into(), label)
    } else {
        (
            a.workload.generate(&gen).into(),
            a.workload.info().label.to_string(),
        )
    };

    let sim = Simulator::new(cfg);
    let mut report = match a.snapshot_dir.as_deref() {
        // Warm through the on-disk snapshot cache: re-invocations that
        // only change the policy (or its knobs) skip the warmup phase.
        Some(dir) => {
            let snap = snapshot_io::warm_cached_in(&sim, &label, &traces, Some(dir));
            sim.resume(&snap)
        }
        None => sim.run(traces),
    };
    report.workload = Some(label);
    if a.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serialize report")
        );
    } else {
        print_human(&report);
    }
    if report.shadow_violations > 0 {
        std::process::exit(1);
    }
}
