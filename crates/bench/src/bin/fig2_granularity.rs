//! **Figure 2(b)** — impact of data granularity on bandwidth efficiency.
//!
//! Three HBM-cache systems transferring 64 B, 128 B and 256 B blocks,
//! normalised to the 64 B system. The paper reports hit-rate gains of
//! ~12 % (128 B) and ~21 % (256 B) but 8–24 % *lower* performance and a
//! much larger bandwidth/data footprint.

use redcache::metrics::geomean;
use redcache::{PolicyKind, SimConfig};
use redcache_bench::{assert_clean, experiment_gen_config, print_table, run_suite, save_json};
use redcache_workloads::registry::paper_workloads;

fn main() {
    let gen = experiment_gen_config();
    let sizes = [64usize, 128, 256];
    // The paper subset: its means are quoted against the paper's.
    let workloads = paper_workloads();
    // One suite per block size (same Alloy architecture).
    let mut per_size = Vec::new();
    for &bs in &sizes {
        let reports = run_suite(
            &workloads,
            &[PolicyKind::Alloy],
            |k| {
                let mut c = SimConfig::scaled(k);
                c.policy.cache_block_bytes = bs;
                c
            },
            &gen,
        );
        for row in &reports {
            assert_clean(row);
        }
        per_size.push(reports);
    }

    let mut rows = Vec::new();
    for (si, &bs) in sizes.iter().enumerate() {
        let mut bw = Vec::new();
        let mut data = Vec::new();
        let mut perf = Vec::new();
        let mut hit = Vec::new();
        for (wi, _) in workloads.iter().enumerate() {
            let base = &per_size[0][wi][0];
            let r = &per_size[si][wi][0];
            bw.push(r.aggregate_bandwidth_bytes_per_s() / base.aggregate_bandwidth_bytes_per_s());
            data.push(r.transferred_bytes() as f64 / base.transferred_bytes() as f64);
            perf.push(r.speedup_over(base));
            hit.push(r.hbm_hit_rate());
        }
        rows.push((
            format!("{bs}B"),
            vec![geomean(&bw), geomean(&data), geomean(&perf), geomean(&hit)],
        ));
    }
    print_table(
        "Fig. 2(b): data granularity, normalised to the 64B HBM cache",
        "granularity",
        &[
            "rel. bandwidth".into(),
            "rel. data".into(),
            "rel. performance".into(),
            "hit rate".into(),
        ],
        &rows,
    );
    save_json("fig2_granularity", &rows);
    println!("\npaper:    128B: +12% hit rate; 256B: +21% hit rate; both move far more data");
    println!("          and lose 8-24% performance against 64B");
}
