//! Whole-system DRAM configuration and the Table I presets.

use crate::timing::TimingParams;
use crate::topology::{AddressMapping, Topology};
use redcache_types::ConfigError;
use serde::{Deserialize, Serialize};

/// Configuration of one DRAM system (one memory interface).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Physical organisation.
    pub topology: Topology,
    /// Timing constraint set.
    pub timing: TimingParams,
    /// Physical-address bit mapping.
    pub mapping: AddressMapping,
    /// Enable periodic per-rank refresh.
    pub refresh_enabled: bool,
    /// Maximum transactions queued per channel before `enqueue` reports
    /// back-pressure.
    pub queue_depth: usize,
    /// Run the system with the runtime timing audit enabled: every
    /// issued command is validated against the Table I constraints by a
    /// [`crate::TimingAuditor`]. Off by default; when off, no audit
    /// state is allocated and the per-command cost is one branch.
    #[serde(default)]
    pub audit: bool,
    /// Step channels on a worker pool inside [`crate::DramSystem::tick`]
    /// (DESIGN.md §3.11). Bit-exact with the serial walk; off by default
    /// because a simulation matrix already saturates the machine with
    /// one-simulation-per-worker fan-out. Sized by `REDCACHE_JOBS` /
    /// available parallelism, capped at the channel count.
    #[serde(default)]
    pub channel_par: bool,
}

impl DramConfig {
    /// The in-package WideIO/HBM DRAM cache of Table I: 2 GB, 4 channels,
    /// 8 ranks/channel, 16 banks, 128-bit bus (64 B + tag per burst).
    pub fn wideio_table1() -> Self {
        Self {
            topology: Topology::from_capacity(4, 8, 16, 2048, 64, 2u64 << 30),
            timing: TimingParams::wideio_table1(),
            mapping: AddressMapping::default(),
            refresh_enabled: true,
            queue_depth: 32,
            audit: false,
            channel_par: false,
        }
    }

    /// The off-chip DDR4 main memory of Table I: 32 GB, 2 channels,
    /// 2 ranks/channel, 8 banks/rank, 64-bit bus.
    pub fn ddr4_table1() -> Self {
        Self {
            topology: Topology::from_capacity(2, 2, 8, 8192, 64, 32u64 << 30),
            timing: TimingParams::ddr4_table1(),
            mapping: AddressMapping::default(),
            refresh_enabled: true,
            queue_depth: 32,
            audit: false,
            channel_par: false,
        }
    }

    /// A scaled-capacity WideIO cache preserving Table I organisation and
    /// timing; used by the "scaled" simulation preset (see DESIGN.md §1).
    pub fn wideio_scaled(capacity_bytes: u64) -> Self {
        let mut c = Self::wideio_table1();
        c.topology = Topology::from_capacity(4, 8, 16, 2048, 64, capacity_bytes);
        c
    }

    /// A scaled-capacity DDR4 main memory (address space shrunk, timing
    /// and organisation unchanged).
    pub fn ddr4_scaled(capacity_bytes: u64) -> Self {
        let mut c = Self::ddr4_table1();
        c.topology = Topology::from_capacity(2, 2, 8, 8192, 64, capacity_bytes);
        c
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found (invalid
    /// timing, zero queue depth, burst larger than a row).
    pub fn validate(&self) -> Result<(), String> {
        self.timing.validate()?;
        if self.queue_depth == 0 {
            return Err("queue_depth must be nonzero".into());
        }
        if self.topology.bytes_per_burst > self.topology.row_bytes {
            return Err("bytes_per_burst cannot exceed row_bytes".into());
        }
        Ok(())
    }

    /// Starts a validated builder seeded from the DDR4 Table I preset.
    /// Use [`DramConfig::to_builder`] to start from any other preset.
    pub fn builder() -> DramConfigBuilder {
        Self::ddr4_table1().to_builder()
    }

    /// Turns this configuration into a builder, for deriving a variant
    /// with a few fields changed and validation re-run on `build`.
    pub fn to_builder(self) -> DramConfigBuilder {
        DramConfigBuilder { cfg: self }
    }
}

/// Builder for [`DramConfig`]: replaces ad-hoc struct-literal /
/// field-poking construction with a validated path. `build` re-runs
/// [`DramConfig::validate`] plus cross-parameter coherence checks that
/// plain field assignment silently skipped.
#[derive(Debug, Clone, Copy)]
pub struct DramConfigBuilder {
    cfg: DramConfig,
}

impl DramConfigBuilder {
    /// Replaces the physical organisation.
    pub fn topology(mut self, t: Topology) -> Self {
        self.cfg.topology = t;
        self
    }

    /// Replaces the timing constraint set.
    pub fn timing(mut self, t: TimingParams) -> Self {
        self.cfg.timing = t;
        self
    }

    /// Replaces the address mapping.
    pub fn mapping(mut self, m: AddressMapping) -> Self {
        self.cfg.mapping = m;
        self
    }

    /// Enables or disables periodic refresh.
    pub fn refresh_enabled(mut self, on: bool) -> Self {
        self.cfg.refresh_enabled = on;
        self
    }

    /// Sets the per-channel transaction-queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.cfg.queue_depth = depth;
        self
    }

    /// Attaches the runtime timing audit.
    pub fn audit(mut self, on: bool) -> Self {
        self.cfg.audit = on;
        self
    }

    /// Enables the per-channel stepping pool (DESIGN.md §3.11).
    pub fn channel_par(mut self, on: bool) -> Self {
        self.cfg.channel_par = on;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on the first inconsistency:
    /// everything [`DramConfig::validate`] checks, plus
    /// `tRAS ≥ tRCD + tRTP` (a row must stay open long enough to both
    /// deliver data and precharge cleanly after the last read).
    pub fn build(self) -> Result<DramConfig, ConfigError> {
        self.cfg.validate()?;
        let t = &self.cfg.timing;
        if t.t_ras < t.t_rcd + t.t_rtp {
            return Err(ConfigError::new(format!(
                "t_ras ({}) must cover t_rcd + t_rtp ({})",
                t.t_ras,
                t.t_rcd + t.t_rtp
            )));
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        DramConfig::wideio_table1().validate().unwrap();
        DramConfig::ddr4_table1().validate().unwrap();
        DramConfig::wideio_scaled(32 << 20).validate().unwrap();
        DramConfig::ddr4_scaled(1 << 30).validate().unwrap();
    }

    #[test]
    fn table1_capacities() {
        assert_eq!(
            DramConfig::wideio_table1().topology.capacity_bytes(),
            2u64 << 30
        );
        assert_eq!(
            DramConfig::ddr4_table1().topology.capacity_bytes(),
            32u64 << 30
        );
    }

    #[test]
    fn builder_round_trips_and_validates() {
        // A builder pass over a preset without changes is the identity.
        let base = DramConfig::wideio_scaled(16 << 20);
        assert_eq!(base.to_builder().build().unwrap(), base);
        // Setters land in the built configuration.
        let c = DramConfig::builder()
            .topology(Topology::from_capacity(4, 2, 8, 8192, 64, 64 << 20))
            .refresh_enabled(false)
            .queue_depth(16)
            .audit(true)
            .build()
            .unwrap();
        assert_eq!(c.topology.channels, 4);
        assert!(!c.refresh_enabled);
        assert_eq!(c.queue_depth, 16);
        assert!(c.audit);
        // Invalid settings are rejected with a ConfigError.
        assert!(DramConfig::builder().queue_depth(0).build().is_err());
        let mut bad_timing = TimingParams::ddr4_table1();
        bad_timing.t_ras = bad_timing.t_rcd + bad_timing.t_rtp - 1;
        let err = DramConfig::builder()
            .timing(bad_timing)
            .build()
            .unwrap_err();
        assert!(err.message().contains("t_ras"), "{err}");
    }

    #[test]
    fn scaled_preserves_organisation() {
        let c = DramConfig::wideio_scaled(32 << 20);
        assert_eq!(c.topology.channels, 4);
        assert_eq!(c.topology.ranks, 8);
        assert_eq!(c.topology.banks, 16);
        assert_eq!(c.topology.capacity_bytes(), 32 << 20);
    }
}
