//! Pluggable set-level replacement policies (DESIGN.md §3.14).
//!
//! A [`ReplacementPolicy`] owns the *ordering* state of a
//! set-associative array — which way of a full set should be displaced
//! next — while the array itself ([`crate::SetAssocCache`], and the
//! DRAM-cache `TagStore` in `redcache-policies`) keeps the tags, dirty
//! bits and versions. The split makes victim selection a drop-in
//! decision: the stores are generic over `P: ReplacementPolicy` and the
//! paper's original behaviours ([`TrueLru`] for the SRAM hierarchy,
//! [`DirectMapped`] for the HBM tag store) are just the default type
//! parameters.
//!
//! ## Call contract
//!
//! The store drives the policy through four hooks, always with
//! `set < sets` and `way < ways` as constructed:
//!
//! - [`touch`](ReplacementPolicy::touch) — a resident way was hit
//!   (lookup hit, or a fill of an already-resident line).
//! - [`fill`](ReplacementPolicy::fill) — a way was just installed
//!   (previously empty, or immediately after `evict` on a replacement).
//! - [`victim`](ReplacementPolicy::victim) — the set is **full**; pick
//!   the way to displace. Pure: must not mutate (the store may consult
//!   the victim and then decide *not* to replace, as the FBR policy
//!   does).
//! - [`evict`](ReplacementPolicy::evict) — a way was removed
//!   (invalidate, or the displacement half of a replacement; a
//!   replacement is always `evict` then `fill` on the same way).
//!
//! ## Snapshot and determinism obligations
//!
//! Policies are part of the warm-fork snapshot (DESIGN.md §3.13), so
//! every implementation must be [`Wire`] with a **deterministic,
//! byte-identical re-encode** and must behave as a pure function of its
//! event history: no RNG, no wall-clock, no hashing with randomized
//! state. The round-trip suites in `crates/cache/tests` pin this for
//! each shipped policy.

use redcache_types::wire::{Reader, Wire, WireError};

/// Sentinel index for "no node" in the intrusive lists below.
const NONE: u32 = u32::MAX;

/// Frequency counters saturate here (one byte, Banshee-style).
pub const FREQ_MAX: u32 = 255;

/// Set-level victim selection, decoupled from tag storage.
///
/// See the module docs for the call contract and snapshot obligations.
pub trait ReplacementPolicy: std::fmt::Debug + Clone + Send + Wire + 'static {
    /// Stable identifier used in docs, tests and error messages.
    const NAME: &'static str;

    /// Fresh ordering state for `sets × ways` frames, all empty.
    fn new(sets: usize, ways: usize) -> Self;

    /// A resident way was referenced.
    fn touch(&mut self, set: usize, way: usize);

    /// A way was installed (it was empty, or `evict` just ran on it).
    fn fill(&mut self, set: usize, way: usize);

    /// Which way of this **full** set should be displaced. Pure.
    fn victim(&self, set: usize) -> usize;

    /// A way was removed (invalidate or replacement displacement).
    fn evict(&mut self, set: usize, way: usize);
}

/// The pre-refactor SRAM behaviour: a global monotonic tick stamped on
/// every touch/fill, victim = first way with the minimal stamp.
///
/// Stamp *order* is what the old kernel's `min_by_key(|w| w.lru)`
/// compared, and every touch/fill here corresponds one-to-one (in the
/// same sequence) with a stamp assignment there, so victim choices are
/// bit-exact with the original `SetAssocCache` — the lockstep proptest
/// in `tests/replacement_lockstep.rs` holds the two kernels together.
#[derive(Debug, Clone)]
pub struct TrueLru {
    ways: usize,
    stamps: Vec<u64>,
    tick: u64,
}

redcache_types::wire_struct!(TrueLru { ways, stamps, tick });

impl ReplacementPolicy for TrueLru {
    const NAME: &'static str = "true-lru";

    fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            stamps: vec![0; sets * ways],
            tick: 0,
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.tick += 1;
        self.stamps[set * self.ways + way] = self.tick;
    }

    fn fill(&mut self, set: usize, way: usize) {
        self.tick += 1;
        self.stamps[set * self.ways + way] = self.tick;
    }

    fn victim(&self, set: usize) -> usize {
        let base = set * self.ways;
        let mut best = 0;
        for rel in 1..self.ways {
            if self.stamps[base + rel] < self.stamps[base + best] {
                best = rel;
            }
        }
        best
    }

    fn evict(&mut self, set: usize, way: usize) {
        self.stamps[set * self.ways + way] = 0;
    }
}

/// The pre-refactor HBM tag-store behaviour: one frame per set, so the
/// victim is always way 0 and no ordering state exists at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectMapped;

impl Wire for DirectMapped {
    fn put(&self, _out: &mut Vec<u8>) {}

    fn get(_r: &mut Reader) -> Result<Self, WireError> {
        Ok(DirectMapped)
    }
}

impl ReplacementPolicy for DirectMapped {
    const NAME: &'static str = "direct";

    fn new(_sets: usize, _ways: usize) -> Self {
        DirectMapped
    }

    fn touch(&mut self, _set: usize, _way: usize) {}

    fn fill(&mut self, _set: usize, _way: usize) {}

    fn victim(&self, _set: usize) -> usize {
        0
    }

    fn evict(&mut self, _set: usize, _way: usize) {}
}

/// Shared intrusive doubly-linked-list storage over flat arrays. Node
/// indices are global frame indices (`set * ways + way`); each policy
/// keeps its own per-set head/tail cursors.
#[derive(Debug, Clone)]
struct Links {
    prev: Vec<u32>,
    next: Vec<u32>,
}

redcache_types::wire_struct!(Links { prev, next });

impl Links {
    fn new(frames: usize) -> Self {
        Self {
            prev: vec![NONE; frames],
            next: vec![NONE; frames],
        }
    }
}

fn unlink(l: &mut Links, head: &mut u32, tail: &mut u32, i: u32) {
    let p = l.prev[i as usize];
    let n = l.next[i as usize];
    if p == NONE {
        *head = n;
    } else {
        l.next[p as usize] = n;
    }
    if n == NONE {
        *tail = p;
    } else {
        l.prev[n as usize] = p;
    }
    l.prev[i as usize] = NONE;
    l.next[i as usize] = NONE;
}

fn push_front(l: &mut Links, head: &mut u32, tail: &mut u32, i: u32) {
    l.prev[i as usize] = NONE;
    l.next[i as usize] = *head;
    if *head == NONE {
        *tail = i;
    } else {
        l.prev[*head as usize] = i;
    }
    *head = i;
}

fn insert_after(l: &mut Links, tail: &mut u32, after: u32, i: u32) {
    let n = l.next[after as usize];
    l.prev[i as usize] = after;
    l.next[i as usize] = n;
    l.next[after as usize] = i;
    if n == NONE {
        *tail = i;
    } else {
        l.prev[n as usize] = i;
    }
}

/// O(1) least-recently-used: one recency list per set, head = MRU,
/// tail = LRU. Every hook is constant time.
#[derive(Debug, Clone)]
pub struct Lru {
    ways: usize,
    links: Links,
    head: Vec<u32>,
    tail: Vec<u32>,
    in_list: Vec<bool>,
}

redcache_types::wire_struct!(Lru {
    ways,
    links,
    head,
    tail,
    in_list,
});

impl Lru {
    fn promote(&mut self, set: usize, way: usize) {
        let i = (set * self.ways + way) as u32;
        if self.in_list[i as usize] {
            unlink(&mut self.links, &mut self.head[set], &mut self.tail[set], i);
        }
        push_front(&mut self.links, &mut self.head[set], &mut self.tail[set], i);
        self.in_list[i as usize] = true;
    }
}

impl ReplacementPolicy for Lru {
    const NAME: &'static str = "lru";

    fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            links: Links::new(sets * ways),
            head: vec![NONE; sets],
            tail: vec![NONE; sets],
            in_list: vec![false; sets * ways],
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.promote(set, way);
    }

    fn fill(&mut self, set: usize, way: usize) {
        self.promote(set, way);
    }

    fn victim(&self, set: usize) -> usize {
        let t = self.tail[set];
        debug_assert_ne!(t, NONE, "victim() requires a full set");
        t as usize - set * self.ways
    }

    fn evict(&mut self, set: usize, way: usize) {
        let i = (set * self.ways + way) as u32;
        if self.in_list[i as usize] {
            unlink(&mut self.links, &mut self.head[set], &mut self.tail[set], i);
            self.in_list[i as usize] = false;
        }
    }
}

/// Least-frequently-used with saturating one-byte counters and an
/// LRU tie-break inside each frequency class.
///
/// Each set keeps one list sorted by frequency ascending from the head;
/// the victim is always the head (lowest frequency, least recently
/// promoted at that frequency), so selection is O(1). A touch bumps the
/// counter (saturating at [`FREQ_MAX`]) and bubbles the node toward the
/// tail past peers of lower-or-equal frequency — O(assoc) worst case,
/// O(1) amortized on the small associativities used here.
///
/// [`Lfu::freq`]/[`Lfu::set_freq`] expose the counters so the FBR
/// policy can seed a fill with a candidate's sampled frequency and
/// read the victim's frequency for its admission threshold.
#[derive(Debug, Clone)]
pub struct Lfu {
    ways: usize,
    links: Links,
    head: Vec<u32>,
    tail: Vec<u32>,
    in_list: Vec<bool>,
    freq: Vec<u32>,
}

redcache_types::wire_struct!(Lfu {
    ways,
    links,
    head,
    tail,
    in_list,
    freq,
});

impl Lfu {
    /// Moves node `i` tailward until the frequency ordering holds again.
    fn bubble(&mut self, set: usize, i: u32) {
        loop {
            let n = self.links.next[i as usize];
            if n == NONE || self.freq[n as usize] > self.freq[i as usize] {
                break;
            }
            unlink(&mut self.links, &mut self.head[set], &mut self.tail[set], i);
            insert_after(&mut self.links, &mut self.tail[set], n, i);
        }
    }

    fn insert_sorted(&mut self, set: usize, i: u32) {
        push_front(&mut self.links, &mut self.head[set], &mut self.tail[set], i);
        self.bubble(set, i);
        self.in_list[i as usize] = true;
    }

    /// Current frequency counter of a way.
    pub fn freq(&self, set: usize, way: usize) -> u32 {
        self.freq[set * self.ways + way]
    }

    /// Overwrites a way's frequency (clamped to [`FREQ_MAX`]) and
    /// restores the ordering invariant. Used by FBR to transfer a
    /// candidate counter onto a fresh fill.
    pub fn set_freq(&mut self, set: usize, way: usize, f: u32) {
        let i = (set * self.ways + way) as u32;
        self.freq[i as usize] = f.min(FREQ_MAX);
        if self.in_list[i as usize] {
            unlink(&mut self.links, &mut self.head[set], &mut self.tail[set], i);
            self.insert_sorted(set, i);
        }
    }
}

impl ReplacementPolicy for Lfu {
    const NAME: &'static str = "lfu";

    fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            links: Links::new(sets * ways),
            head: vec![NONE; sets],
            tail: vec![NONE; sets],
            in_list: vec![false; sets * ways],
            freq: vec![0; sets * ways],
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        let i = (set * self.ways + way) as u32;
        if self.freq[i as usize] < FREQ_MAX {
            self.freq[i as usize] += 1;
        }
        if self.in_list[i as usize] {
            self.bubble(set, i);
        }
    }

    fn fill(&mut self, set: usize, way: usize) {
        let i = (set * self.ways + way) as u32;
        if self.in_list[i as usize] {
            unlink(&mut self.links, &mut self.head[set], &mut self.tail[set], i);
        }
        self.freq[i as usize] = 0;
        self.insert_sorted(set, i);
    }

    fn victim(&self, set: usize) -> usize {
        let h = self.head[set];
        debug_assert_ne!(h, NONE, "victim() requires a full set");
        h as usize - set * self.ways
    }

    fn evict(&mut self, set: usize, way: usize) {
        let i = (set * self.ways + way) as u32;
        if self.in_list[i as usize] {
            unlink(&mut self.links, &mut self.head[set], &mut self.tail[set], i);
            self.in_list[i as usize] = false;
        }
        self.freq[i as usize] = 0;
    }
}

/// Segmented LRU: fills land in a probationary segment and only a
/// second reference promotes into the protected segment (capacity
/// `ways / 2`), which is scan-resistant — a streaming burst can only
/// displace probationary lines. Victim = probationary LRU, falling back
/// to protected LRU when probation is empty. All hooks are O(1).
#[derive(Debug, Clone)]
pub struct Slru {
    ways: usize,
    protected_cap: u32,
    links: Links,
    prob_head: Vec<u32>,
    prob_tail: Vec<u32>,
    prot_head: Vec<u32>,
    prot_tail: Vec<u32>,
    prot_len: Vec<u32>,
    seg: Vec<u8>, // 0 = probation, 1 = protected
    in_list: Vec<bool>,
}

redcache_types::wire_struct!(Slru {
    ways,
    protected_cap,
    links,
    prob_head,
    prob_tail,
    prot_head,
    prot_tail,
    prot_len,
    seg,
    in_list,
});

impl Slru {
    fn unlink_current(&mut self, set: usize, i: u32) {
        if self.seg[i as usize] == 1 {
            unlink(
                &mut self.links,
                &mut self.prot_head[set],
                &mut self.prot_tail[set],
                i,
            );
            self.prot_len[set] -= 1;
        } else {
            unlink(
                &mut self.links,
                &mut self.prob_head[set],
                &mut self.prob_tail[set],
                i,
            );
        }
    }
}

impl ReplacementPolicy for Slru {
    const NAME: &'static str = "slru";

    fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            protected_cap: (ways / 2) as u32,
            links: Links::new(sets * ways),
            prob_head: vec![NONE; sets],
            prob_tail: vec![NONE; sets],
            prot_head: vec![NONE; sets],
            prot_tail: vec![NONE; sets],
            prot_len: vec![0; sets],
            seg: vec![0; sets * ways],
            in_list: vec![false; sets * ways],
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        let i = (set * self.ways + way) as u32;
        if !self.in_list[i as usize] {
            self.fill(set, way);
            return;
        }
        self.unlink_current(set, i);
        if self.protected_cap == 0 {
            // Degenerate geometry: plain LRU over probation.
            self.seg[i as usize] = 0;
            push_front(
                &mut self.links,
                &mut self.prob_head[set],
                &mut self.prob_tail[set],
                i,
            );
            return;
        }
        self.seg[i as usize] = 1;
        push_front(
            &mut self.links,
            &mut self.prot_head[set],
            &mut self.prot_tail[set],
            i,
        );
        self.prot_len[set] += 1;
        if self.prot_len[set] > self.protected_cap {
            let d = self.prot_tail[set];
            unlink(
                &mut self.links,
                &mut self.prot_head[set],
                &mut self.prot_tail[set],
                d,
            );
            self.prot_len[set] -= 1;
            self.seg[d as usize] = 0;
            push_front(
                &mut self.links,
                &mut self.prob_head[set],
                &mut self.prob_tail[set],
                d,
            );
        }
    }

    fn fill(&mut self, set: usize, way: usize) {
        let i = (set * self.ways + way) as u32;
        if self.in_list[i as usize] {
            self.unlink_current(set, i);
        }
        self.seg[i as usize] = 0;
        push_front(
            &mut self.links,
            &mut self.prob_head[set],
            &mut self.prob_tail[set],
            i,
        );
        self.in_list[i as usize] = true;
    }

    fn victim(&self, set: usize) -> usize {
        let base = set * self.ways;
        let t = self.prob_tail[set];
        if t != NONE {
            return t as usize - base;
        }
        let t = self.prot_tail[set];
        debug_assert_ne!(t, NONE, "victim() requires a full set");
        t as usize - base
    }

    fn evict(&mut self, set: usize, way: usize) {
        let i = (set * self.ways + way) as u32;
        if self.in_list[i as usize] {
            self.unlink_current(set, i);
            self.in_list[i as usize] = false;
            self.seg[i as usize] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<P: ReplacementPolicy>(p: &P) -> P {
        let mut bytes = Vec::new();
        p.put(&mut bytes);
        let mut r = Reader::new(&bytes);
        let back = P::get(&mut r).expect("policy state decodes");
        assert!(r.is_empty(), "decode must consume the payload");
        let mut re = Vec::new();
        back.put(&mut re);
        assert_eq!(bytes, re, "{} re-encode must be byte-identical", P::NAME);
        back
    }

    #[test]
    fn true_lru_victim_is_oldest_stamp() {
        let mut p = TrueLru::new(1, 4);
        for w in 0..4 {
            p.fill(0, w);
        }
        p.touch(0, 0);
        assert_eq!(p.victim(0), 1);
        p.touch(0, 1);
        assert_eq!(p.victim(0), 2);
        let q = roundtrip(&p);
        assert_eq!(q.victim(0), 2);
    }

    #[test]
    fn direct_mapped_always_picks_way_zero() {
        let mut p = DirectMapped::new(8, 1);
        p.fill(3, 0);
        p.touch(3, 0);
        assert_eq!(p.victim(3), 0);
        roundtrip(&p);
    }

    #[test]
    fn lru_list_tracks_recency_per_set() {
        let mut p = Lru::new(2, 3);
        for w in 0..3 {
            p.fill(0, w);
            p.fill(1, w);
        }
        p.touch(0, 0); // set 0 order (MRU→LRU): 0, 2, 1
        assert_eq!(p.victim(0), 1);
        assert_eq!(p.victim(1), 0); // set 1 untouched: plain fill order
        p.evict(0, 1);
        p.fill(0, 1);
        assert_eq!(p.victim(0), 2);
        let q = roundtrip(&p);
        assert_eq!(q.victim(0), 2);
        assert_eq!(q.victim(1), 0);
    }

    #[test]
    fn lfu_victim_is_lowest_frequency_then_lru() {
        let mut p = Lfu::new(1, 3);
        for w in 0..3 {
            p.fill(0, w);
        }
        p.touch(0, 1);
        p.touch(0, 1);
        p.touch(0, 2);
        // Frequencies: way0=0, way1=2, way2=1 → victim way 0.
        assert_eq!(p.victim(0), 0);
        assert_eq!(p.freq(0, 1), 2);
        // Tie at zero: way filled first is the victim.
        p.evict(0, 1);
        p.fill(0, 1); // ways 0 and 1 both freq 0; 0 is older
        assert_eq!(p.victim(0), 0);
        roundtrip(&p);
    }

    #[test]
    fn lfu_set_freq_reorders_and_clamps() {
        let mut p = Lfu::new(1, 2);
        p.fill(0, 0);
        p.fill(0, 1);
        p.set_freq(0, 0, 10_000);
        assert_eq!(p.freq(0, 0), FREQ_MAX);
        assert_eq!(p.victim(0), 1);
        let q = roundtrip(&p);
        assert_eq!(q.victim(0), 1);
    }

    #[test]
    fn lfu_counters_saturate() {
        let mut p = Lfu::new(1, 1);
        p.fill(0, 0);
        for _ in 0..(FREQ_MAX + 50) {
            p.touch(0, 0);
        }
        assert_eq!(p.freq(0, 0), FREQ_MAX);
    }

    #[test]
    fn slru_is_scan_resistant() {
        let mut p = Slru::new(1, 4); // protected capacity 2
        for w in 0..4 {
            p.fill(0, w);
        }
        p.touch(0, 0); // promote 0 and 1 into protected
        p.touch(0, 1);
        // A scan can only displace probationary ways (2, then 3).
        assert_eq!(p.victim(0), 2);
        p.evict(0, 2);
        p.fill(0, 2);
        assert_eq!(p.victim(0), 3);
        let q = roundtrip(&p);
        assert_eq!(q.victim(0), 3);
    }

    #[test]
    fn slru_promotion_overflow_demotes_to_probation() {
        let mut p = Slru::new(1, 4); // protected capacity 2
        for w in 0..4 {
            p.fill(0, w);
        }
        p.touch(0, 0);
        p.touch(0, 1);
        p.touch(0, 2); // protected full: way 0 demoted to probation MRU
                       // Probation (MRU→LRU) is now 0, 3 → victim is 3.
        assert_eq!(p.victim(0), 3);
        p.evict(0, 3);
        p.fill(0, 3);
        assert_eq!(p.victim(0), 0);
    }

    #[test]
    fn slru_single_way_set_degenerates_to_lru() {
        let mut p = Slru::new(1, 1); // protected capacity 0
        p.fill(0, 0);
        p.touch(0, 0);
        assert_eq!(p.victim(0), 0);
    }
}
