//! The **No-HBM** baseline topology (Fig. 1a): a multicore CPU and
//! off-chip DDR4, with no in-package cache at all.

use crate::controller::{
    CompletedReq, ControllerGauges, ControllerStats, DramCacheController, MemorySides,
    PolicyConfig, PolicyKind,
};
use crate::engine::{legs, Engine, LegSpec};
use redcache_dram::{AuditStats, DramStats, TxnKind};
use redcache_types::{AccessKind, Cycle, LineAddr, MemRequest};

/// Controller that forwards every request to main memory.
#[derive(Debug)]
pub struct NoHbmController {
    sides: MemorySides,
    engine: Engine,
    stats: ControllerStats,
    compl_buf: Vec<redcache_dram::Completion>,
}

impl NoHbmController {
    /// Builds the controller.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: &PolicyConfig) -> Self {
        cfg.validate().expect("invalid policy config");
        Self {
            sides: MemorySides::new(cfg),
            engine: Engine::new(),
            stats: ControllerStats::default(),
            compl_buf: Vec::new(),
        }
    }
}

impl DramCacheController for NoHbmController {
    fn submit(&mut self, req: MemRequest, now: Cycle) {
        self.sides.sync_to(now);
        self.stats.submitted += 1;
        let addr = self.sides.ddr_addr(req.line);
        let mut done = Vec::new();
        match req.kind {
            AccessKind::Read => {
                self.stats.ddr_reads += 1;
                let version = self.sides.ddr_version(req.line);
                self.engine.start(
                    req,
                    version,
                    &[LegSpec {
                        leg: legs::DDR_READ,
                        hbm: false,
                        kind: TxnKind::Read,
                        addr,
                        bursts: 1,
                        gates_data: true,
                        deferred: false,
                    }],
                    &mut self.sides,
                    now,
                    &mut done,
                );
            }
            AccessKind::Writeback => {
                self.stats.ddr_writes += 1;
                self.sides.ddr_store(req.line, req.data_version);
                self.engine.start(
                    req,
                    0,
                    &[LegSpec {
                        leg: legs::DDR_WRITE,
                        hbm: false,
                        kind: TxnKind::Write,
                        addr,
                        bursts: 1,
                        gates_data: true,
                        deferred: false,
                    }],
                    &mut self.sides,
                    now,
                    &mut done,
                );
            }
        }
        debug_assert!(done.is_empty());
    }

    fn tick(&mut self, now: Cycle, done: &mut Vec<CompletedReq>) {
        self.sides.ddr.tick(now);
        let before = done.len();
        let mut buf = std::mem::take(&mut self.compl_buf);
        self.sides.ddr.drain_completions_into(&mut buf);
        for c in &buf {
            self.engine
                .on_completion(c.meta, c.done_at, &mut self.sides, done);
        }
        buf.clear();
        self.compl_buf = buf;
        let _ = self.engine.take_events();
        for d in &done[before..] {
            self.stats.completed += 1;
            if d.kind == AccessKind::Read {
                self.stats.reads_completed += 1;
                self.stats.read_latency_sum += d.latency();
            }
        }
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        // This controller does pure event-driven bookkeeping: completions
        // appear only on DDR command slots, so the DDR system's horizon
        // is the controller's. (The HBM side is never ticked here.)
        self.sides.ddr.sys.next_event(now)
    }

    fn pending(&self) -> usize {
        self.engine.pending()
    }

    fn stats(&self) -> ControllerStats {
        self.stats
    }

    fn hbm_stats(&self) -> Option<DramStats> {
        None
    }

    fn ddr_stats(&self) -> DramStats {
        *self.sides.ddr.sys.stats()
    }

    fn ddr_audit(&self) -> Option<AuditStats> {
        self.sides.ddr_audit()
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::NoHbm
    }

    fn preload(&mut self, line: LineAddr, version: u64) {
        self.sides.ddr_store(line, version);
    }

    fn gauges(&self) -> ControllerGauges {
        self.sides.dram_gauges()
    }

    fn reset_stats(&mut self) {
        self.stats = ControllerStats::default();
        self.sides.ddr.sys.reset_stats();
    }

    fn adopt_warm(&mut self, warm: &crate::WarmMemoryState) {
        self.sides.restore_warm(warm);
    }

    fn supports_warm_fork(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_types::{CoreId, ReqId};

    fn drive(c: &mut NoHbmController, from: Cycle) -> (Vec<CompletedReq>, Cycle) {
        let mut done = Vec::new();
        let mut now = from;
        while c.pending() > 0 {
            c.tick(now, &mut done);
            now += 1;
            assert!(now < 1_000_000);
        }
        (done, now)
    }

    #[test]
    fn read_returns_preloaded_version() {
        let mut c = NoHbmController::new(&PolicyConfig::scaled(PolicyKind::NoHbm));
        c.preload(LineAddr::new(10), 123);
        c.submit(
            MemRequest::read(ReqId(1), LineAddr::new(10), CoreId(0), 0),
            0,
        );
        let (done, _) = drive(&mut c, 0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].data_version, 123);
        assert_eq!(c.stats().ddr_reads, 1);
        assert!(c.hbm_stats().is_none());
    }

    #[test]
    fn writeback_then_read_round_trips() {
        let mut c = NoHbmController::new(&PolicyConfig::scaled(PolicyKind::NoHbm));
        c.submit(
            MemRequest::writeback(ReqId(1), LineAddr::new(5), CoreId(0), 0, 42),
            0,
        );
        let (_, t) = drive(&mut c, 0);
        c.submit(
            MemRequest::read(ReqId(2), LineAddr::new(5), CoreId(0), t),
            t,
        );
        let (done, _) = drive(&mut c, t);
        assert_eq!(done[0].data_version, 42);
        assert_eq!(c.stats().completed, 2);
    }

    #[test]
    fn no_wideio_traffic_ever() {
        let mut c = NoHbmController::new(&PolicyConfig::scaled(PolicyKind::NoHbm));
        for i in 0..20 {
            c.submit(
                MemRequest::read(ReqId(i), LineAddr::new(i * 7), CoreId(0), 0),
                0,
            );
        }
        drive(&mut c, 0);
        assert!(c.ddr_stats().bytes_total() > 0);
        assert_eq!(c.stats().hbm_probes, 0);
    }
}
