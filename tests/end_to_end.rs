//! Workspace integration tests: full-system runs spanning every crate.
//!
//! These use reduced workloads (`GenConfig::tiny`) and the `quick`
//! simulation preset so the whole suite stays fast, while still driving
//! cores → hierarchy → controller → WideIO/DDR end to end.

use redcache::sim::run_workload;
use redcache::{PolicyKind, RedVariant, SimConfig, Simulator};
use redcache_workloads::{synthetic, GenConfig, Workload};

fn tiny() -> GenConfig {
    GenConfig::tiny()
}

fn all_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::NoHbm,
        PolicyKind::Ideal,
        PolicyKind::Alloy,
        PolicyKind::Bear,
        PolicyKind::Red(RedVariant::Alpha),
        PolicyKind::Red(RedVariant::Gamma),
        PolicyKind::Red(RedVariant::Basic),
        PolicyKind::Red(RedVariant::InSitu),
        PolicyKind::Red(RedVariant::Full),
        PolicyKind::Fbr,
    ]
}

#[test]
fn every_policy_runs_every_workload_without_stale_reads() {
    // The heavyweight correctness sweep: all 14 suite workloads × every
    // architecture,
    // every read checked against the shadow memory.
    for w in Workload::ALL {
        let traces = w.generate(&tiny());
        for kind in all_policies() {
            let r = Simulator::new(SimConfig::quick(kind)).run(traces.clone());
            assert_eq!(r.shadow_violations, 0, "{kind:?} on {w} served stale data");
            assert!(r.cycles > 0, "{kind:?} on {w}");
            assert!(r.instructions > 0, "{kind:?} on {w}");
        }
    }
}

#[test]
fn request_conservation_holds() {
    // Every below-L3 read the simulator issues is eventually completed:
    // controller counters must balance. (Warmup disabled — the stat
    // reset would otherwise split in-flight requests across the
    // boundary.)
    let traces = Workload::Is.generate(&tiny());
    for kind in all_policies() {
        let cfg = SimConfig::quick(kind)
            .to_builder()
            .warmup_fraction(0.0)
            .build()
            .expect("preset-derived config validates");
        let r = Simulator::new(cfg).run(traces.clone());
        assert_eq!(
            r.ctl.submitted, r.ctl.completed,
            "{kind:?}: {} submitted vs {} completed",
            r.ctl.submitted, r.ctl.completed
        );
        assert_eq!(r.ctl.submitted, r.mem_reads + r.mem_writebacks, "{kind:?}");
    }
}

#[test]
fn nohbm_never_touches_wideio_and_ideal_never_touches_ddr() {
    let traces = Workload::Hist.generate(&tiny());
    let nohbm = Simulator::new(SimConfig::quick(PolicyKind::NoHbm)).run(traces.clone());
    assert!(nohbm.hbm.is_none());
    assert!(nohbm.ddr.bytes_total() > 0);

    let ideal = Simulator::new(SimConfig::quick(PolicyKind::Ideal)).run(traces);
    assert_eq!(
        ideal.ddr.bytes_total(),
        0,
        "IDEAL must serve everything in-package"
    );
    assert!(ideal.hbm.unwrap().bytes_total() > 0);
    assert_eq!(ideal.hbm_hit_rate(), 1.0);
}

#[test]
fn ideal_bounds_real_caches_on_reuse_heavy_work() {
    let traces = synthetic::generate(&synthetic::SyntheticSpec::mixed(), &tiny());
    let ideal = Simulator::new(SimConfig::quick(PolicyKind::Ideal)).run(traces.clone());
    for kind in [
        PolicyKind::Alloy,
        PolicyKind::Bear,
        PolicyKind::Red(RedVariant::Full),
    ] {
        let r = Simulator::new(SimConfig::quick(kind)).run(traces.clone());
        assert!(
            ideal.cycles <= r.cycles * 11 / 10,
            "IDEAL ({}) should not lose to {kind:?} ({}) by >10%",
            ideal.cycles,
            r.cycles
        );
    }
}

#[test]
fn energy_accounting_is_positive_and_consistent() {
    let traces = Workload::Mg.generate(&tiny());
    for kind in all_policies() {
        let r = Simulator::new(SimConfig::quick(kind)).run(traces.clone());
        let e = &r.energy;
        assert!(e.cpu.total_j() > 0.0, "{kind:?} CPU energy");
        assert!(e.ddr.total_j() >= 0.0);
        let total = e.cpu.total_j() + e.hbm.total_j() + e.ddr.total_j();
        assert!((e.total_j() - total).abs() < 1e-15, "{kind:?} energy sum");
        if kind == PolicyKind::NoHbm {
            assert_eq!(e.hbm.total_j(), 0.0);
        } else {
            assert!(e.hbm.total_j() > 0.0, "{kind:?} HBM energy");
        }
    }
}

#[test]
fn alpha_bypass_reduces_wideio_traffic_on_streams() {
    // LREG is a pure stream: RedCache must move far fewer WideIO bytes
    // than Alloy (which probes and fills every miss).
    let traces = Workload::Lreg.generate(&tiny());
    let alloy = Simulator::new(SimConfig::quick(PolicyKind::Alloy)).run(traces.clone());
    let red = Simulator::new(SimConfig::quick(PolicyKind::Red(RedVariant::Full))).run(traces);
    let a = alloy.hbm.unwrap().bytes_total();
    let r = red.hbm.unwrap().bytes_total();
    assert!(
        r * 2 < a,
        "RedCache should move <50% of Alloy's WideIO bytes on a stream ({r} vs {a})"
    );
}

#[test]
fn deterministic_across_runs() {
    let traces = Workload::Rdx.generate(&tiny());
    let a = Simulator::new(SimConfig::quick(PolicyKind::Red(RedVariant::Full))).run(traces.clone());
    let b = Simulator::new(SimConfig::quick(PolicyKind::Red(RedVariant::Full))).run(traces);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.ctl.hbm_hits, b.ctl.hbm_hits);
    assert_eq!(a.extras, b.extras);
}

#[test]
fn run_workload_labels_and_geomean_helpers() {
    let r = run_workload(SimConfig::quick(PolicyKind::Alloy), Workload::Brn, &tiny());
    assert_eq!(r.workload.as_deref(), Some("BRN"));
    assert!(r.ipc() > 0.0);
    assert!(redcache::metrics::geomean(&[r.ipc()]) > 0.0);
}

#[test]
fn granularity_sweep_runs_clean() {
    let traces = Workload::Fft.generate(&tiny());
    for bs in [64usize, 128, 256] {
        let mut cfg = SimConfig::quick(PolicyKind::Alloy);
        cfg.policy.cache_block_bytes = bs;
        let r = Simulator::new(cfg).run(traces.clone());
        assert_eq!(r.shadow_violations, 0, "{bs}B blocks served stale data");
        // Larger blocks move at least as many WideIO bytes.
        assert!(r.hbm.unwrap().bytes_total() > 0);
    }
}

#[test]
fn warmup_fraction_changes_measured_window_only() {
    let traces = Workload::Ocn.generate(&tiny());
    let builder = || SimConfig::quick(PolicyKind::Alloy).to_builder();
    let cold_cfg = builder().warmup_fraction(0.0).build().unwrap();
    let cold = Simulator::new(cold_cfg).run(traces.clone());
    let warm_cfg = builder().warmup_fraction(0.5).build().unwrap();
    let warm = Simulator::new(warm_cfg).run(traces);
    assert!(
        warm.cycles < cold.cycles,
        "measured window must shrink with warmup"
    );
    assert_eq!(warm.shadow_violations, 0);
}
