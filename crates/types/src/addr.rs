//! Physical addresses and their derived views (cache lines, OS pages).
//!
//! The simulator works with physical addresses only; workload generators
//! perform their own virtual-to-physical mapping before emitting traces.
//! Cache-line granularity is a runtime parameter (the paper sweeps 64,
//! 128 and 256 bytes in Fig. 2b), so [`LineAddr`] carries no implicit
//! block size — conversions take the block size explicitly. OS pages are
//! fixed at 4 KB, matching the α-counting granularity of §III.A.1.

use serde::{Deserialize, Serialize};

/// Default cache-block size in bytes (Table I: 64 B blocks).
pub const BLOCK_BYTES: usize = 64;

/// OS page size in bytes; α-counts are maintained per page (§III.A.1).
pub const PAGE_BYTES: usize = 4096;

/// A physical byte address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache-line view of this address for a given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn line(self, block_bytes: usize) -> LineAddr {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        LineAddr(self.0 >> block_bytes.trailing_zeros())
    }

    /// Returns the 4 KB page this address belongs to.
    pub const fn page(self) -> PageId {
        PageId(self.0 >> PAGE_BYTES.trailing_zeros())
    }

    /// Byte offset of this address within its cache line.
    pub fn line_offset(self, block_bytes: usize) -> usize {
        (self.0 & (block_bytes as u64 - 1)) as usize
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line index: a physical address divided by the block size.
///
/// The block size is a system-wide run parameter, so a `LineAddr` is only
/// meaningful relative to the configuration that produced it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line index directly from its raw value.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw line index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// First byte address covered by this line.
    pub fn base(self, block_bytes: usize) -> PhysAddr {
        PhysAddr(self.0 << block_bytes.trailing_zeros())
    }

    /// The 4 KB page containing this line.
    pub fn page(self, block_bytes: usize) -> PageId {
        self.base(block_bytes).page()
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A 4 KB OS page identifier. One α-count is kept per page (§III.A.1):
/// the paper observes that ~90 % of blocks within a page share the same
/// reuse count, so per-page counting costs 64× less memory.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page id directly from its raw value.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw page number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// First byte address of this page.
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_BYTES.trailing_zeros())
    }

    /// Number of `block_bytes`-sized lines per page.
    pub const fn lines_per_page(block_bytes: usize) -> usize {
        PAGE_BYTES / block_bytes
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{:#x}", self.0)
    }
}

macro_rules! wire_newtype {
    ($($ty:ident),+) => {
        $(impl crate::wire::Wire for $ty {
            fn put(&self, out: &mut Vec<u8>) {
                crate::wire::Wire::put(&self.0, out);
            }
            fn get(
                r: &mut crate::wire::Reader<'_>,
            ) -> Result<Self, crate::wire::WireError> {
                Ok($ty(crate::wire::Wire::get(r)?))
            }
        })+
    };
}

wire_newtype!(PhysAddr, LineAddr, PageId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_round_trip_preserves_base() {
        for bs in [64usize, 128, 256] {
            let a = PhysAddr::new(0xdead_beef);
            let l = a.line(bs);
            assert_eq!(l.base(bs).raw(), a.raw() / bs as u64 * bs as u64);
        }
    }

    #[test]
    fn page_of_line_matches_page_of_addr() {
        let a = PhysAddr::new(0x12_3456);
        assert_eq!(a.line(64).page(64), a.page());
        assert_eq!(a.line(256).page(256), a.page());
    }

    #[test]
    fn line_offset_is_within_block() {
        let a = PhysAddr::new(0x1234 + 37);
        assert_eq!(a.line_offset(64), (0x1234 + 37) % 64);
        assert!(a.line_offset(64) < 64);
    }

    #[test]
    fn lines_per_page_for_each_granularity() {
        assert_eq!(PageId::lines_per_page(64), 64);
        assert_eq!(PageId::lines_per_page(128), 32);
        assert_eq!(PageId::lines_per_page(256), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_size_panics() {
        let _ = PhysAddr::new(0).line(96);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(format!("{}", PhysAddr::new(16)), "0x10");
        assert_eq!(format!("{}", LineAddr::new(1)), "L0x1");
        assert_eq!(format!("{}", PageId::new(2)), "P0x2");
    }

    #[test]
    fn adjacent_addresses_in_same_line_share_index() {
        let a = PhysAddr::new(0x1000);
        let b = PhysAddr::new(0x103f);
        let c = PhysAddr::new(0x1040);
        assert_eq!(a.line(64), b.line(64));
        assert_ne!(a.line(64), c.line(64));
    }
}
