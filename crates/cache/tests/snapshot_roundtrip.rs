//! Snapshot/restore round-trips for the SRAM hierarchy (DESIGN.md
//! §3.13).
//!
//! Strategy mirrors the DRAM suite: drive a hierarchy to an arbitrary
//! mid-stream point (including with misses parked in the MSHR file),
//! capture its state, install it into a freshly built hierarchy both
//! directly and through the wire codec, then continue original and
//! restored copies in lockstep and require identical observable
//! behaviour — the same hit levels, versions, MSHR outcomes, evictions,
//! fill waiters, and per-level statistics.

use proptest::prelude::*;
use redcache_cache::{AccessOutcome, Hierarchy, HierarchyConfig};
use redcache_types::wire::{Reader, Wire};
use redcache_types::{CoreId, LineAddr, MemOp, Restorable, Snapshot};

/// One scripted access: `(core, line, store?)`.
type Op = (u16, u64, bool);

/// Applies `ops[from..to]`, completing one parked MSHR line every third
/// step so fills and waiter wakeups interleave with fresh accesses.
/// Everything observable is folded into the returned log.
fn drive(h: &mut Hierarchy, ops: &[Op], from: usize, to: usize) -> Vec<(AccessOutcome, String)> {
    let mut log = Vec::new();
    let mut outstanding: Vec<LineAddr> = Vec::new();
    for (i, &(core, line, store)) in ops.iter().enumerate().take(to).skip(from) {
        let core = CoreId(core);
        let line = LineAddr::new(line);
        let op = if store { MemOp::Store } else { MemOp::Load };
        let out = h.access(core, line, op, i as u64 + 1, i as u64);
        if out.mem_read_needed() {
            outstanding.push(line);
        }
        let mut fills = String::new();
        if i % 3 == 0 {
            if let Some(l) = outstanding.pop() {
                let fill = h.complete_fill(l, i as u64 + 1_000_000);
                for &w in &fill.waiters {
                    let evs = h.fill_waiter(core, l, i as u64 + 1_000_000, None);
                    fills.push_str(&format!("{w}:{evs:?};"));
                }
                fills.push_str(&format!("{fill:?}"));
            }
        }
        log.push((out, fills));
    }
    log
}

fn table1_ops(seed_ops: &[(u16, u64, bool)]) -> Vec<Op> {
    seed_ops.to_vec()
}

/// Runs `ops`, snapshots after `snap_at` of them, and checks that the
/// original, a directly restored copy, and a wire round-tripped copy
/// agree over the rest of the stream.
fn assert_forkable(cfg: HierarchyConfig, ops: &[Op], snap_at: usize) {
    let mut orig = Hierarchy::new(cfg);
    drive(&mut orig, ops, 0, snap_at);
    let state = orig.snapshot();

    // Direct restore.
    let mut forked = Hierarchy::new(cfg);
    forked.restore(&state);

    // Wire round-trip restore: encode, decode, byte-identical re-encode.
    let mut bytes = Vec::new();
    state.put(&mut bytes);
    let mut r = Reader::new(&bytes);
    let decoded = Hierarchy::get(&mut r).expect("state decodes");
    assert!(r.is_empty(), "decode must consume the whole payload");
    let mut re = Vec::new();
    decoded.put(&mut re);
    assert_eq!(bytes, re, "snapshot encoding must be deterministic");
    let mut wired = Hierarchy::new(cfg);
    wired.restore(&decoded);

    // The restored copies resume with the original's parked misses.
    assert_eq!(orig.mshr_len(), forked.mshr_len());
    assert_eq!(orig.mshr_len(), wired.mshr_len());

    // Lockstep continuation.
    let a = drive(&mut orig, ops, snap_at, ops.len());
    let b = drive(&mut forked, ops, snap_at, ops.len());
    let c = drive(&mut wired, ops, snap_at, ops.len());
    assert_eq!(a, b, "forked copy diverged from the original");
    assert_eq!(a, c, "wire round-tripped copy diverged from the original");
    assert_eq!(orig.stats(), forked.stats());
    assert_eq!(orig.stats(), wired.stats());
}

#[test]
fn mshr_parked_misses_survive_the_snapshot() {
    let cfg = HierarchyConfig::table1(2);
    // A conflict-heavy stream over few sets keeps misses parked at the
    // snapshot point.
    let ops: Vec<Op> = (0..64u64)
        .map(|i| ((i % 2) as u16, i * 5, i % 4 == 0))
        .collect();
    assert_forkable(cfg, &ops, 17);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary access streams, arbitrary snapshot point: the fork
    /// must be undetectable from the observable behaviour.
    #[test]
    fn random_streams_snapshot_in_lockstep(
        seed_ops in proptest::collection::vec(
            (0u16..4, 0u64..0x800, any::<bool>()),
            2..120,
        ),
        cut in 0.0f64..1.0,
    ) {
        let ops = table1_ops(&seed_ops);
        let snap_at = ((ops.len() as f64) * cut) as usize;
        assert_forkable(HierarchyConfig::table1(4), &ops, snap_at);
    }
}
