//! `redcache-sim` — command-line driver for single simulations.
//!
//! ```text
//! redcache-sim [--workload RDX] [--policy redcache] [--budget 50000]
//!              [--shrink 1] [--block 64] [--preset scaled|quick]
//!              [--warmup 0.3] [--snapshot-dir DIR] [--json]
//! ```
//!
//! Policies: whatever the policy registry declares — currently nohbm |
//! ideal | alloy | bear | red-alpha | red-gamma | red-basic |
//! red-insitu | redcache | fbr (run `--help` for the live list).
//!
//! `--snapshot-dir` persists the post-warmup simulator state to disk
//! (keyed by trace content and warm-relevant configuration, like the
//! `REDCACHE_TRACE_CACHE_DIR` trace cache): later invocations that only
//! change the policy or its knobs skip the warmup entirely. Defaults to
//! the `REDCACHE_SNAPSHOT_DIR` environment variable when set.

use redcache::{snapshot_io, PolicyKind, RedVariant, RunReport, SimConfig, Simulator};
use redcache_workloads::{GenConfig, SharedTraces, Workload};
use std::path::PathBuf;

struct Args {
    workload: Workload,
    policy: PolicyKind,
    budget: usize,
    shrink: usize,
    block: usize,
    preset: String,
    warmup: f64,
    snapshot_dir: Option<PathBuf>,
    json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: redcache-sim [--workload LABEL] [--policy NAME] [--budget N]\n\
         \x20                  [--shrink N] [--block 64|128|256] [--preset scaled|quick]\n\
         \x20                  [--warmup F] [--snapshot-dir DIR] [--json]\n\
         workloads: {}\n\
         policies:  {}",
        Workload::ALL.map(|w| w.info().label).join(" "),
        redcache::policy_registry::known_names().join(" ")
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: Workload::Hist,
        policy: PolicyKind::Red(RedVariant::Full),
        budget: 50_000,
        shrink: 1,
        block: 64,
        preset: "scaled".into(),
        warmup: 0.3,
        snapshot_dir: std::env::var_os("REDCACHE_SNAPSHOT_DIR").map(PathBuf::from),
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--workload" | "-w" => {
                args.workload = val().parse().unwrap_or_else(|_| usage());
            }
            "--policy" | "-p" => args.policy = val().parse().unwrap_or_else(|_| usage()),
            "--budget" | "-b" => args.budget = val().parse().unwrap_or_else(|_| usage()),
            "--shrink" | "-s" => args.shrink = val().parse().unwrap_or_else(|_| usage()),
            "--block" => args.block = val().parse().unwrap_or_else(|_| usage()),
            "--preset" => args.preset = val(),
            "--warmup" => args.warmup = val().parse().unwrap_or_else(|_| usage()),
            "--snapshot-dir" => args.snapshot_dir = Some(PathBuf::from(val())),
            "--json" => args.json = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn print_human(r: &RunReport) {
    println!("policy             {}", r.policy);
    println!(
        "workload           {}",
        r.workload.as_deref().unwrap_or("?")
    );
    println!("execution time     {} cycles", r.cycles);
    println!("instructions       {} (IPC {:.2})", r.instructions, r.ipc());
    println!("mem reads / wbs    {} / {}", r.mem_reads, r.mem_writebacks);
    println!("HBM hit rate       {:.1}%", r.hbm_hit_rate() * 100.0);
    if let Some(h) = &r.hbm {
        println!(
            "WideIO             {} bytes, row-hit {:.1}%, bus busy {} cyc",
            h.bytes_total(),
            h.row_hit_rate() * 100.0,
            h.bus_busy_cycles
        );
    }
    println!(
        "DDR                {} bytes, row-hit {:.1}%, bus busy {} cyc",
        r.ddr.bytes_total(),
        r.ddr.row_hit_rate() * 100.0,
        r.ddr.bus_busy_cycles
    );
    println!("mean read latency  {:.0} cycles", r.ctl.mean_read_latency());
    println!(
        "energy             HBM {:.4} mJ | DDR {:.4} mJ | CPU {:.4} mJ | total {:.4} mJ",
        r.energy.hbm.total_j() * 1e3,
        r.energy.ddr.total_j() * 1e3,
        r.energy.cpu.total_j() * 1e3,
        r.energy.total_j() * 1e3,
    );
    for (k, v) in &r.extras {
        println!("  {k:<24} {v:.3}");
    }
    println!("shadow violations  {}", r.shadow_violations);
}

fn main() {
    let a = parse_args();
    let mut gen = GenConfig::scaled();
    gen.budget_per_thread = a.budget;
    gen.shrink = a.shrink;
    let mut cfg = SimConfig::preset(&a.preset, a.policy).unwrap_or_else(|| usage());
    cfg.policy.cache_block_bytes = a.block;
    cfg.warmup_fraction = a.warmup;
    if cfg.hierarchy.cores < gen.threads {
        gen.threads = cfg.hierarchy.cores;
    }

    let traces: SharedTraces = a.workload.generate(&gen).into();
    let sim = Simulator::new(cfg);
    let mut report = match a.snapshot_dir.as_deref() {
        // Warm through the on-disk snapshot cache: re-invocations that
        // only change the policy (or its knobs) skip the warmup phase.
        Some(dir) => {
            let snap =
                snapshot_io::warm_cached_in(&sim, a.workload.info().label, &traces, Some(dir));
            sim.resume(&snap)
        }
        None => sim.run(traces),
    };
    report.workload = Some(a.workload.info().label.to_string());
    if a.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serialize report")
        );
    } else {
        print_human(&report);
    }
    if report.shadow_violations > 0 {
        std::process::exit(1);
    }
}
