//! **Figure 9** — relative system execution time of every DRAM-cache
//! architecture, normalised to the Alloy cache, for the 11 Table II
//! workloads (the `eval_matrix` rows).
//!
//! Paper's headline numbers: RedCache averages 0.69× Alloy (31 %
//! faster) and 0.76× Bear (24 %); α contributes more than γ (27 % vs
//! 14 %); RedCache reaches ~98 % of Red-InSitu.

use redcache::metrics::geomean;
use redcache_bench::{eval_matrix, print_table, save_json};

fn main() {
    let (workloads, policies, reports) = eval_matrix();
    let alloy_idx = policies
        .iter()
        .position(|p| p.to_string() == "Alloy")
        .expect("Alloy baseline");
    let cols: Vec<String> = policies.iter().map(|p| p.to_string()).collect();

    let mut rows = Vec::new();
    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for (wi, w) in workloads.iter().enumerate() {
        let base = &reports[wi][alloy_idx];
        let vals: Vec<f64> = reports[wi]
            .iter()
            .map(|r| r.time_normalized_to(base))
            .collect();
        for (pi, v) in vals.iter().enumerate() {
            per_policy[pi].push(*v);
        }
        rows.push((w.info().label.to_string(), vals));
    }
    rows.push((
        "MEAN".to_string(),
        per_policy.iter().map(|v| geomean(v)).collect(),
    ));

    print_table(
        "Fig. 9: execution time normalised to Alloy (lower is better)",
        "workload",
        &cols,
        &rows,
    );
    save_json("fig9_exec_time", &rows);

    // Paper-vs-measured summary.
    let mean_of = |name: &str| {
        let i = policies.iter().position(|p| p.to_string() == name).unwrap();
        geomean(&per_policy[i])
    };
    println!("\npaper:    RedCache 0.69x Alloy, Bear ~0.91x Alloy, RedCache ~0.98x Red-InSitu");
    println!(
        "measured: RedCache {:.2}x Alloy, Bear {:.2}x Alloy, RedCache {:.2}x Red-InSitu",
        mean_of("RedCache"),
        mean_of("Bear"),
        mean_of("RedCache") / mean_of("Red-InSitu"),
    );
    println!(
        "measured: Red-Alpha {:.2}x, Red-Gamma {:.2}x (paper: alpha contributes more than gamma)",
        mean_of("Red-Alpha"),
        mean_of("Red-Gamma"),
    );
}
