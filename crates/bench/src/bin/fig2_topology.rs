//! **Figure 2(a)** — impact of system topology on bandwidth efficiency.
//!
//! For No-HBM, IDEAL and a normal HBM cache (Alloy), averaged across
//! the 11 Table II workloads and normalised to No-HBM, the paper
//! reports:
//! IDEAL ≈ 6× aggregate WideIO+DDRx bandwidth, ≈ 1.33× transferred
//! data, ≈ 4.5× performance; the HBM cache utilises slightly more
//! bandwidth than IDEAL, moves ≈ 2× the data, and loses ≈ 40 %
//! performance against IDEAL.

use redcache::metrics::geomean;
use redcache::{PolicyKind, SimConfig};
use redcache_bench::{assert_clean, experiment_gen_config, print_table, run_suite, save_json};
use redcache_workloads::registry::paper_workloads;

fn main() {
    let gen = experiment_gen_config();
    let policies = [PolicyKind::NoHbm, PolicyKind::Ideal, PolicyKind::Alloy];
    // The paper subset: its means are quoted against the paper's.
    let workloads = paper_workloads();
    let reports = run_suite(&workloads, &policies, SimConfig::scaled, &gen);
    for row in &reports {
        assert_clean(row);
    }

    // Per-workload values normalised to No-HBM, then averaged.
    let mut bw = vec![Vec::new(); 3];
    let mut data = vec![Vec::new(); 3];
    let mut perf = vec![Vec::new(); 3];
    for row in &reports {
        let base = &row[0];
        for (pi, r) in row.iter().enumerate() {
            bw[pi]
                .push(r.aggregate_bandwidth_bytes_per_s() / base.aggregate_bandwidth_bytes_per_s());
            data[pi].push(r.transferred_bytes() as f64 / base.transferred_bytes() as f64);
            perf[pi].push(r.speedup_over(base));
        }
    }
    let rows: Vec<(String, Vec<f64>)> = policies
        .iter()
        .enumerate()
        .map(|(pi, p)| {
            (
                p.to_string(),
                vec![geomean(&bw[pi]), geomean(&data[pi]), geomean(&perf[pi])],
            )
        })
        .collect();
    print_table(
        "Fig. 2(a): system topology, normalised to No-HBM",
        "topology",
        &[
            "rel. bandwidth".into(),
            "rel. data".into(),
            "rel. performance".into(),
        ],
        &rows,
    );
    save_json("fig2_topology", &rows);
    println!("\npaper:    IDEAL ~6x bandwidth, ~1.33x data, ~4.5x performance over No-HBM;");
    println!("          HBM slightly more bandwidth than IDEAL, ~2x data, ~40% less performance");
}
