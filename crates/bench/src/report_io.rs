//! Unified results export: every artifact the experiment binaries
//! persist goes through this module, wrapped in a versioned envelope.
//!
//! The envelope names the payload (`schema`) and stamps it with
//! [`SCHEMA_VERSION`], so downstream tooling can reject files written
//! by an incompatible harness instead of mis-parsing them. Writers are
//! best-effort: experiments always print their tables to stdout, and a
//! failed write is a warning, never a crash.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::Path;

/// Version stamped into every saved artifact. Bump on any breaking
/// change to a payload layout.
pub const SCHEMA_VERSION: u32 = 1;

/// The envelope wrapped around every saved payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Saved<T> {
    /// Payload name, e.g. `"eval_matrix"`.
    pub schema: String,
    /// Harness schema version at write time.
    pub schema_version: u32,
    /// The payload itself.
    pub data: T,
}

#[derive(Serialize)]
struct SavedRef<'a, T> {
    schema: &'a str,
    schema_version: u32,
    data: &'a T,
}

/// Writes `value` as pretty JSON to `path`, wrapped in the
/// [`Saved`] envelope under the given `schema` name. Best-effort.
pub fn write_json_at<T: Serialize>(path: &Path, schema: &str, value: &T) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() && std::fs::create_dir_all(dir).is_err() {
            return;
        }
    }
    let envelope = SavedRef {
        schema,
        schema_version: SCHEMA_VERSION,
        data: value,
    };
    match serde_json::to_string_pretty(&envelope) {
        Ok(s) => {
            if let Err(e) = std::fs::write(path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(saved {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {schema}: {e}"),
    }
}

/// Writes `value` to `results/{name}.json` under schema name `name`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    write_json_at(
        &Path::new("results").join(format!("{name}.json")),
        name,
        value,
    );
}

/// Writes `value` as pretty JSON to `path` *without* the envelope —
/// for artifacts whose payload already carries `schema` /
/// `schema_version` fields at its top level because downstream tooling
/// addresses that layout directly (e.g. `BENCH_speed.json`).
pub fn write_json_raw<T: Serialize>(path: &Path, name: &str, value: &T) {
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(saved {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Writes `items` as JSON Lines (one compact object per line) to
/// `path`. Best-effort, like the JSON writers.
pub fn write_jsonl<T: Serialize>(path: &Path, items: &[T]) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() && std::fs::create_dir_all(dir).is_err() {
            return;
        }
    }
    let write_all = || -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        for item in items {
            let line = serde_json::to_string(item)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            writeln!(f, "{line}")?;
        }
        f.flush()
    };
    match write_all() {
        Ok(()) => eprintln!("(saved {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Reads a payload saved by [`write_json`]/[`write_json_at`],
/// unwrapping the envelope and checking the version. Files written by
/// pre-envelope harnesses (a bare payload) still load, so existing
/// caches survive the format change.
pub fn read_json<T: DeserializeOwned>(path: &Path) -> Option<T> {
    let s = std::fs::read_to_string(path).ok()?;
    if let Ok(saved) = serde_json::from_str::<Saved<T>>(&s) {
        if saved.schema_version == SCHEMA_VERSION {
            return Some(saved.data);
        }
        eprintln!(
            "warning: {} has schema_version {} (want {SCHEMA_VERSION}); ignoring it",
            path.display(),
            saved.schema_version
        );
        return None;
    }
    serde_json::from_str::<T>(&s).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_envelope() {
        let dir = std::env::temp_dir().join("redcache_report_io_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("probe.json");
        write_json_at(&path, "probe", &vec![1u64, 2, 3]);
        let back: Vec<u64> = read_json(&path).expect("saved payload loads");
        assert_eq!(back, [1, 2, 3]);
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"schema\": \"probe\""));
        assert!(s.contains("\"schema_version\": 1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reads_legacy_bare_payloads() {
        let dir = std::env::temp_dir().join("redcache_report_io_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("legacy.json");
        std::fs::write(&path, "[4, 5]").unwrap();
        let back: Vec<u64> = read_json(&path).expect("bare payload loads");
        assert_eq!(back, [4, 5]);
        let _ = std::fs::remove_file(&path);
    }
}
