//! **Ablation** — the refresh-bypass optimisation ("Bypass due to
//! refresh", §IV.A): RedCache with and without routing around
//! refreshing WideIO ranks.

use redcache::{PolicyKind, RedConfig, RedVariant, SimConfig};
use redcache_bench::{
    assert_clean, experiment_gen_config, print_table, run_matrix, save_json, RunSpec,
};
use redcache_workloads::Workload;

fn main() {
    let gen = experiment_gen_config();
    let workloads = [Workload::Hist, Workload::Ocn, Workload::Lu, Workload::Fft];
    let variants: Vec<(&str, bool)> = vec![("bypass off", false), ("bypass on", true)];

    let mut specs = Vec::new();
    for &w in &workloads {
        for &(_, on) in &variants {
            let kind = PolicyKind::Red(RedVariant::Full);
            let mut cfg = SimConfig::scaled(kind);
            let mut rc = RedConfig::for_variant(RedVariant::Full);
            rc.refresh_bypass = on;
            cfg.policy.red_override = Some(rc);
            specs.push(RunSpec {
                workload: w,
                policy: kind,
                cfg,
            });
        }
    }
    let reports = run_matrix(&specs, &gen);
    assert_clean(&reports);

    let cols: Vec<String> = workloads
        .iter()
        .map(|w| w.info().label.to_string())
        .collect();
    let mut rows = Vec::new();
    for (vi, (name, _)) in variants.iter().enumerate() {
        let vals: Vec<f64> = workloads
            .iter()
            .enumerate()
            .map(|(wi, _)| {
                let base = &reports[wi * 2];
                reports[wi * 2 + vi].time_normalized_to(base)
            })
            .collect();
        rows.push((name.to_string(), vals));
    }
    // Also report how many requests actually took the bypass.
    let mut byp = Vec::new();
    for (wi, _) in workloads.iter().enumerate() {
        byp.push(reports[wi * 2 + 1].ctl.refresh_bypasses as f64);
    }
    rows.push(("(bypasses taken)".to_string(), byp));
    print_table(
        "Ablation: refresh bypass (execution time normalised to bypass-off)",
        "variant",
        &cols,
        &rows,
    );
    save_json("ablation_refresh", &rows);
}
