//! Workload characterization: extract each application's below-L3
//! request stream and print its block-reuse/bandwidth profile (the
//! Fig. 3 analysis) plus the §II.C last-write fraction — the two
//! observations that motivate the α and γ mechanisms.
//!
//! ```sh
//! cargo run --release --example workload_characterization
//! ```

use redcache::profile::{last_access_writeback_fraction, MemLevelStream, ReuseProfile};
use redcache_cache::HierarchyConfig;
use redcache_workloads::{GenConfig, Workload};

fn main() {
    let mut gen = GenConfig::scaled();
    gen.budget_per_thread = 50_000;
    let hier = HierarchyConfig::scaled(16);

    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>12} {:>11}",
        "wl", "mem reqs", "blocks", "cost@0-2", "cost@3+", "last-write"
    );
    for w in Workload::ALL {
        let traces = w.generate(&gen);
        let stream = MemLevelStream::extract(&traces, hier);
        let profile = ReuseProfile::from_stream(&stream, 150);
        let blocks: u64 = profile.blocks_by_reuse.iter().sum();
        println!(
            "{:<6} {:>10} {:>10} {:>11.1}% {:>11.1}% {:>10.1}%",
            w.info().label,
            stream.events.len(),
            blocks,
            100.0 * profile.cost_share(0, 2),
            100.0 * profile.cost_share(3, 150),
            100.0 * last_access_writeback_fraction(&stream, 2),
        );
    }
    println!("\nreading the table:");
    println!("  cost@0-2 high  → stream-dominated (L-type): α should bypass it");
    println!("  cost@3+  high  → reused working set (H-type): worth caching");
    println!("  last-write high→ γ's last-write elision has material traffic to save");
}
