//! FR-FCFS command scheduling for one channel.
//!
//! Each command slot (one per DRAM command cycle), the scheduler:
//!
//! 1. starts any due per-rank refresh whose banks are quiescent,
//! 2. issues the column command of the oldest *row-hit* transaction that
//!    is legal right now (first-ready), else
//! 3. issues the next preparatory command (PRE or ACT) for the oldest
//!    transaction that can make progress (FCFS).
//!
//! Legality enforces the full Table I constraint set; data-bus occupancy
//! and the write→read tWTR turnaround give the asymmetric read/write
//! costs that RedCache's RCU manager is designed around.

use crate::bank::Rank;
use crate::channel::{Channel, Txn};
use crate::stats::DramStats;
use crate::system::{IssuedCmd, IssuedKind, TxnKind};
use crate::timing::TimingParams;
use redcache_types::Cycle;

/// Outcome of one scheduling slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotOutcome {
    /// No command issued.
    Idle,
    /// A command was issued.
    Issued(IssuedKind),
}

/// Transactions visible to the scheduler per slot. Real controllers
/// schedule over a bounded associative queue (Table I-era parts use
/// 32-entry transaction queues); bounding the scan also keeps the
/// scheduler O(window²) instead of O(queue²).
const SCHED_WINDOW: usize = 32;

/// Write-drain watermarks (virtual-write-queue behaviour, paper ref
/// [13]): reads have priority; writes are batched once this many are
/// queued and drained down to the low mark, amortising the read↔write
/// bus turnaround.
const WRITE_DRAIN_HIGH: usize = 12;
const WRITE_DRAIN_LOW: usize = 2;

pub(crate) fn rank_refresh_due(rank: &Rank, now: Cycle) -> bool {
    now >= rank.next_refresh && !rank.is_refreshing(now)
}

/// Attempts to begin refresh on due ranks. A refresh waits until every
/// bank in the rank can be precharged (no write recovery pending) and no
/// read data is still owed from the rank. `chan_idx` is the index of
/// `ch` within the system, so every emitted command carries the channel
/// that actually issued it.
pub(crate) fn service_refresh(
    ch: &mut Channel,
    chan_idx: usize,
    t: &TimingParams,
    now: Cycle,
    stats: &mut DramStats,
    issued: &mut Vec<IssuedCmd>,
) {
    for r in 0..ch.ranks.len() {
        if !rank_refresh_due(&ch.ranks[r], now) {
            continue;
        }
        let quiescent = ch.banks[r].iter().all(|b| b.ready_pre <= now)
            && !ch
                .queue
                .iter()
                .any(|txn| txn.loc.rank == r && txn.bursts_left < burst_total_hint(txn));
        if !quiescent {
            continue; // postponed; retried next slot
        }
        // Close all open rows (a PREA before REF, counted as precharges)
        // and block the rank.
        let mut closed = 0;
        for (bi, b) in ch.banks[r].iter_mut().enumerate() {
            if let Some(row) = b.open_row.take() {
                closed += 1;
                issued.push(IssuedCmd {
                    kind: IssuedKind::Precharge,
                    loc: crate::topology::DramLoc {
                        channel: chan_idx,
                        rank: r,
                        bank: bi,
                        row,
                        col: 0,
                    },
                    cycle: now,
                });
            }
        }
        issued.push(IssuedCmd {
            kind: IssuedKind::Refresh,
            loc: crate::topology::DramLoc {
                channel: chan_idx,
                rank: r,
                bank: 0,
                row: 0,
                col: 0,
            },
            cycle: now,
        });
        let until = now + t.t_rfc;
        for b in ch.banks[r].iter_mut() {
            b.ready_act = b.ready_act.max(until);
            b.ready_col = b.ready_col.max(until);
            b.ready_pre = b.ready_pre.max(until);
        }
        let rank = &mut ch.ranks[r];
        rank.refreshing_until = until;
        rank.next_refresh += t.t_refi;
        stats.energy.refreshes += 1;
        stats.energy.pres += closed;
    }
}

/// A transaction that has issued at least one burst is considered to own
/// its row until finished; refresh must not tear the row down under it.
fn burst_total_hint(txn: &Txn) -> u32 {
    // Transactions record only `bursts_left`; treat any partially issued
    // transaction (tracked by the caller via data_done_at) as in-flight.
    if txn.data_done_at > 0 && txn.bursts_left > 0 {
        txn.bursts_left + 1 // partially issued
    } else {
        txn.bursts_left
    }
}

fn col_cmd_legal(ch: &Channel, t: &TimingParams, txn: &Txn, now: Cycle) -> bool {
    let bank = ch.bank(&txn.loc);
    if bank.open_row != Some(txn.loc.row) || now < bank.ready_col {
        return false;
    }
    if let Some(last) = ch.last_col_cmd {
        if now < last + t.t_ccd {
            return false;
        }
    }
    let rank = &ch.ranks[txn.loc.rank];
    if rank.is_refreshing(now) {
        return false;
    }
    match txn.kind {
        TxnKind::Read => {
            if now < rank.ready_read {
                return false; // tWTR after write data
            }
            now + t.t_cas >= ch.bus_free_at
        }
        TxnKind::Write => now + t.t_cwd >= ch.bus_free_at,
    }
}

fn issue_col_cmd(
    ch: &mut Channel,
    t: &TimingParams,
    idx: usize,
    now: Cycle,
    bytes_per_burst: usize,
    stats: &mut DramStats,
) -> IssuedCmd {
    let (kind, loc) = {
        let txn = &ch.queue[idx];
        (txn.kind, txn.loc)
    };
    let (data_start, issued_kind) = match kind {
        TxnKind::Read => (now + t.t_cas, IssuedKind::Read),
        TxnKind::Write => (now + t.t_cwd, IssuedKind::Write),
    };
    let data_end = data_start + t.t_bl;
    ch.bus_free_at = data_end;
    ch.last_col_cmd = Some(now);
    ch.last_col_kind = Some(kind);
    {
        let bank = ch.bank_mut(&loc);
        match kind {
            TxnKind::Read => bank.ready_pre = bank.ready_pre.max(now + t.t_rtp),
            TxnKind::Write => bank.ready_pre = bank.ready_pre.max(data_end + t.t_wr),
        }
    }
    if kind == TxnKind::Write {
        let rank = &mut ch.ranks[loc.rank];
        rank.ready_read = rank.ready_read.max(data_end + t.t_wtr);
    }
    match kind {
        TxnKind::Read => {
            stats.energy.rd_bursts += 1;
            stats.bytes_read += bytes_per_burst as u64;
        }
        TxnKind::Write => {
            stats.energy.wr_bursts += 1;
            stats.bytes_written += bytes_per_burst as u64;
        }
    }
    stats.col_cmds += 1;
    stats.bus_busy_cycles += t.t_bl;
    let txn = &mut ch.queue[idx];
    txn.bursts_left -= 1;
    txn.data_done_at = data_end;
    IssuedCmd {
        kind: issued_kind,
        loc,
        cycle: now,
    }
}

fn act_legal(
    ch: &mut Channel,
    t: &TimingParams,
    txn_loc: &crate::topology::DramLoc,
    now: Cycle,
) -> bool {
    let rank_idx = txn_loc.rank;
    if ch.ranks[rank_idx].is_refreshing(now) || now < ch.ranks[rank_idx].ready_act {
        return false;
    }
    if !ch.ranks[rank_idx].faw_allows_act(now, t.t_faw) {
        return false;
    }
    let bank = ch.bank(txn_loc);
    bank.open_row.is_none() && now >= bank.ready_act
}

fn issue_act(
    ch: &mut Channel,
    t: &TimingParams,
    loc: &crate::topology::DramLoc,
    now: Cycle,
    stats: &mut DramStats,
) -> IssuedCmd {
    {
        let bank = ch.bank_mut(loc);
        bank.open_row = Some(loc.row);
        bank.ready_col = now + t.t_rcd;
        bank.ready_pre = now + t.t_ras;
        bank.ready_act = now + t.t_rc;
    }
    let rank = &mut ch.ranks[loc.rank];
    rank.ready_act = rank.ready_act.max(now + t.t_rrd);
    rank.act_times.push_back(now);
    stats.energy.acts += 1;
    stats.demand_acts += 1;
    IssuedCmd {
        kind: IssuedKind::Activate,
        loc: *loc,
        cycle: now,
    }
}

fn issue_pre(
    ch: &mut Channel,
    t: &TimingParams,
    loc: &crate::topology::DramLoc,
    now: Cycle,
    stats: &mut DramStats,
) -> IssuedCmd {
    {
        let bank = ch.bank_mut(loc);
        bank.open_row = None;
        bank.ready_act = bank.ready_act.max(now + t.t_rp);
    }
    stats.energy.pres += 1;
    IssuedCmd {
        kind: IssuedKind::Precharge,
        loc: *loc,
        cycle: now,
    }
}

/// Runs one command slot on channel `chan_idx`. Any issued commands
/// (including refresh-forced precharges) are appended to `issued`.
pub(crate) fn schedule_slot(
    ch: &mut Channel,
    chan_idx: usize,
    t: &TimingParams,
    now: Cycle,
    bytes_per_burst: usize,
    stats: &mut DramStats,
    issued: &mut Vec<IssuedCmd>,
) -> SlotOutcome {
    service_refresh(ch, chan_idx, t, now, stats, issued);

    // Write-drain hysteresis: enter batching above the high watermark,
    // leave below the low one.
    if ch.pending_writes >= WRITE_DRAIN_HIGH {
        ch.write_drain_mode = true;
    } else if ch.pending_writes <= WRITE_DRAIN_LOW {
        ch.write_drain_mode = false;
    }
    let window = ch.queue.len().min(SCHED_WINDOW);

    // Pass 1: oldest legal column command — reads first; writes fall to
    // second priority unless the channel is in write-drain mode. A write
    // still issues whenever no read column is ready this slot (the bus
    // would otherwise idle), which also guarantees forward progress for
    // rows held open by deferred writes.
    let mut read_idx = None;
    let mut write_idx = None;
    for (i, txn) in ch.queue.iter().take(SCHED_WINDOW).enumerate() {
        if txn.bursts_left == 0 {
            continue;
        }
        let slot = match txn.kind {
            TxnKind::Read => &mut read_idx,
            TxnKind::Write => &mut write_idx,
        };
        if slot.is_none() && col_cmd_legal(ch, t, txn, now) {
            *slot = Some(i);
        }
        if read_idx.is_some() && write_idx.is_some() {
            break;
        }
    }
    let pick = if ch.write_drain_mode {
        write_idx.or(read_idx)
    } else {
        read_idx.or(write_idx)
    };
    if let Some(i) = pick {
        let cmd = issue_col_cmd(ch, t, i, now, bytes_per_burst, stats);
        issued.push(cmd);
        return SlotOutcome::Issued(cmd.kind);
    }

    // Pass 2: oldest transaction that can take a preparatory step
    // (ACT/PRE do not turn the data bus, so writes may prepare freely).
    for i in 0..window {
        let (loc, id, bursts_left) = {
            let txn = &ch.queue[i];
            (txn.loc, txn.id, txn.bursts_left)
        };
        if bursts_left == 0 {
            continue;
        }
        let open = ch.bank(&loc).open_row;
        match open {
            None => {
                if act_legal(ch, t, &loc, now) {
                    let cmd = issue_act(ch, t, &loc, now, stats);
                    issued.push(cmd);
                    return SlotOutcome::Issued(cmd.kind);
                }
            }
            Some(row) if row != loc.row => {
                // Close the conflicting row only when no older queued
                // transaction still hits it (FR-FCFS fairness).
                let has_hits = ch.row_has_pending_hits(&loc, id);
                let bank = ch.bank(&loc);
                if !has_hits && now >= bank.ready_pre {
                    let cmd = issue_pre(ch, t, &loc, now, stats);
                    issued.push(cmd);
                    return SlotOutcome::Issued(cmd.kind);
                }
            }
            Some(_) => {} // row open, column not yet legal: wait
        }
    }
    SlotOutcome::Idle
}

/// Earliest cycle at which the tFAW window admits a new ACT on `rank`
/// (0 when fewer than four ACTs remain in the window at `now`) — the
/// non-mutating twin of [`Rank::faw_allows_act`] for event prediction.
fn faw_earliest(rank: &Rank, t_faw: Cycle, now: Cycle) -> Cycle {
    let valid = rank.act_times.iter().filter(|&&x| x + t_faw > now).count();
    if valid < 4 {
        0
    } else {
        // Valid timestamps form the ascending suffix of `act_times`; the
        // window clears when the oldest of the last four leaves it.
        rank.act_times[rank.act_times.len() - 4] + t_faw
    }
}

/// A lower bound on the next cycle (>= `now`, unaligned) at which this
/// channel's scheduler could issue any command, or `Cycle::MAX` when no
/// event is ever possible from the current state.
///
/// Exactness contract: between two processed slots no channel state
/// mutates (commands and enqueues happen only at processed slots), so
/// every legality threshold consulted by [`schedule_slot`] is frozen and
/// a command first becomes legal exactly when its candidate cycle is
/// reached. Returning a value that is too *early* merely costs an idle
/// processed slot (observably identical to a skipped one); this function
/// must never return a value later than the first issuable slot.
pub(crate) fn channel_next_event(
    ch: &Channel,
    t: &TimingParams,
    refresh_enabled: bool,
    now: Cycle,
) -> Cycle {
    // A pending write-drain hysteresis transition latches at the very
    // next scheduling pass and can flip the read/write pick priority,
    // so the horizon must never skip past one: an enqueue could move
    // `pending_writes` back into the hysteresis band before the next
    // processed pass, leaving the flag latched differently than a
    // cycle-by-cycle walk would have left it.
    let latched = if ch.pending_writes >= WRITE_DRAIN_HIGH {
        true
    } else if ch.pending_writes <= WRITE_DRAIN_LOW {
        false
    } else {
        ch.write_drain_mode
    };
    if latched != ch.write_drain_mode {
        return now;
    }
    // One pass over the window marking banks whose open row still has a
    // pending hit queued: the conflict branch below then answers in O(1)
    // instead of rescanning the window per transaction. A transaction in
    // the conflict branch has `row != open_row`, so it can never mark
    // its own bank — the self-exclusion of the naive scan is implicit.
    let banks_per_rank = ch.banks.first().map_or(0, Vec::len);
    let mut hit_bits = [0u64; 4];
    for txn in ch.queue.iter().take(SCHED_WINDOW) {
        if txn.bursts_left == 0 {
            continue;
        }
        if ch.bank(&txn.loc).open_row == Some(txn.loc.row) {
            let idx = txn.loc.rank * banks_per_rank + txn.loc.bank;
            if idx < 256 {
                hit_bits[idx / 64] |= 1 << (idx % 64);
            }
        }
    }
    let mut earliest = Cycle::MAX;
    if refresh_enabled {
        for (r, rank) in ch.ranks.iter().enumerate() {
            let c = if rank_refresh_due(rank, now) {
                // Due but not started: waiting on bank quiescence (write
                // recovery) or an in-flight transaction, whose own
                // candidate below covers the latter case.
                ch.banks[r].iter().map(|b| b.ready_pre).max().unwrap_or(now)
            } else {
                rank.next_refresh
            };
            earliest = earliest.min(c);
            if earliest <= now {
                return now;
            }
        }
    }
    for txn in ch.queue.iter().take(SCHED_WINDOW) {
        if txn.bursts_left == 0 {
            continue;
        }
        let bank = ch.bank(&txn.loc);
        let rank = &ch.ranks[txn.loc.rank];
        let c = match bank.open_row {
            Some(row) if row == txn.loc.row => {
                // Column command: each threshold of `col_cmd_legal`,
                // inverted into "earliest legal cycle".
                let mut c = bank.ready_col.max(rank.refreshing_until);
                if let Some(last) = ch.last_col_cmd {
                    c = c.max(last + t.t_ccd);
                }
                match txn.kind {
                    TxnKind::Read => c
                        .max(rank.ready_read)
                        .max(ch.bus_free_at.saturating_sub(t.t_cas)),
                    TxnKind::Write => c.max(ch.bus_free_at.saturating_sub(t.t_cwd)),
                }
            }
            None => bank
                .ready_act
                .max(rank.ready_act)
                .max(rank.refreshing_until)
                .max(faw_earliest(rank, t.t_faw, now)),
            Some(_) => {
                // Row conflict: a PRE becomes legal at `ready_pre` unless
                // another queued row hit still owns the row — that
                // transaction contributes its own column candidate.
                let idx = txn.loc.rank * banks_per_rank + txn.loc.bank;
                let pending_hit = if idx < 256 {
                    hit_bits[idx / 64] & (1 << (idx % 64)) != 0
                } else {
                    ch.row_has_pending_hits(&txn.loc, txn.id)
                };
                if pending_hit {
                    continue;
                }
                bank.ready_pre
            }
        };
        earliest = earliest.min(c);
        if earliest <= now {
            return now;
        }
    }
    earliest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::TxnId;
    use crate::topology::DramLoc;

    /// Tests schedule on a nonzero channel index so any hardcoded
    /// `channel: 0` attribution regression fails loudly.
    const CH: usize = 1;

    fn mk_channel() -> Channel {
        Channel::new(2, 4, 1_000_000) // refresh far away
    }

    fn t() -> TimingParams {
        TimingParams::ddr4_table1()
    }

    fn push(
        ch: &mut Channel,
        id: u64,
        kind: TxnKind,
        rank: usize,
        bank: usize,
        row: u64,
        now: Cycle,
    ) {
        ch.queue.push(Txn {
            id: TxnId(id),
            kind,
            loc: DramLoc {
                channel: CH,
                rank,
                bank,
                row,
                col: 0,
            },
            bursts_left: 1,
            meta: 0,
            enqueued_at: now,
            data_done_at: 0,
        });
    }

    fn run_until_issue(
        ch: &mut Channel,
        timing: &TimingParams,
        from: Cycle,
        stats: &mut DramStats,
    ) -> (Cycle, IssuedCmd) {
        let mut now = from;
        loop {
            let mut issued = Vec::new();
            let _ = schedule_slot(ch, CH, timing, now, 64, stats, &mut issued);
            if let Some(c) = issued.last() {
                for c in &issued {
                    assert_eq!(c.loc.channel, CH, "command attributed to the wrong channel");
                }
                return (now, *c);
            }
            now += timing.cmd_clock_divisor;
            assert!(now < from + 1_000_000, "no command issued");
        }
    }

    #[test]
    fn closed_bank_gets_act_then_read_after_trcd() {
        let mut ch = mk_channel();
        let timing = t();
        let mut stats = DramStats::default();
        push(&mut ch, 1, TxnKind::Read, 0, 0, 3, 0);
        let (t0, c0) = run_until_issue(&mut ch, &timing, 0, &mut stats);
        assert_eq!(c0.kind, IssuedKind::Activate);
        let (t1, c1) = run_until_issue(&mut ch, &timing, t0 + 2, &mut stats);
        assert_eq!(c1.kind, IssuedKind::Read);
        assert!(
            t1 >= t0 + timing.t_rcd,
            "read at {t1} violates tRCD after ACT at {t0}"
        );
    }

    #[test]
    fn row_conflict_precharges_first() {
        let mut ch = mk_channel();
        let timing = t();
        let mut stats = DramStats::default();
        ch.banks[0][0].open_row = Some(9);
        push(&mut ch, 1, TxnKind::Read, 0, 0, 3, 0);
        let (_, c0) = run_until_issue(&mut ch, &timing, 0, &mut stats);
        assert_eq!(c0.kind, IssuedKind::Precharge);
    }

    #[test]
    fn row_hit_bypasses_older_conflict() {
        // FR-FCFS: a younger row-hit read issues before an older
        // row-conflict read is served.
        let mut ch = mk_channel();
        let timing = t();
        let mut stats = DramStats::default();
        ch.banks[0][0].open_row = Some(5);
        ch.banks[0][0].ready_col = 0;
        push(&mut ch, 1, TxnKind::Read, 0, 1, 7, 0); // older, closed bank 1
        push(&mut ch, 2, TxnKind::Read, 0, 0, 5, 0); // younger, open-row hit
        let (_, c0) = run_until_issue(&mut ch, &timing, 0, &mut stats);
        assert_eq!(c0.kind, IssuedKind::Read);
        assert_eq!(c0.loc.bank, 0);
    }

    #[test]
    fn write_then_read_same_rank_waits_twtr() {
        let mut ch = mk_channel();
        let timing = t();
        let mut stats = DramStats::default();
        ch.banks[0][0].open_row = Some(1);
        ch.banks[0][1].open_row = Some(1);
        // Write alone in the queue (no read waiting), so it issues…
        push(&mut ch, 1, TxnKind::Write, 0, 0, 1, 0);
        let (tw, cw) = run_until_issue(&mut ch, &timing, 0, &mut stats);
        assert_eq!(cw.kind, IssuedKind::Write);
        // …then a read to the same rank arrives and must honour tWTR.
        push(&mut ch, 2, TxnKind::Read, 0, 1, 1, tw);
        let write_data_end = tw + timing.t_cwd + timing.t_bl;
        let (tr, cr) = run_until_issue(&mut ch, &timing, tw + 2, &mut stats);
        assert_eq!(cr.kind, IssuedKind::Read);
        assert!(
            tr >= write_data_end + timing.t_wtr,
            "read at {tr} violates tWTR (write data ends {write_data_end})"
        );
    }

    #[test]
    fn back_to_back_writes_same_row_cost_tccd() {
        let mut ch = mk_channel();
        let timing = TimingParams::wideio_table1();
        let mut stats = DramStats::default();
        ch.banks[0][0].open_row = Some(1);
        push(&mut ch, 1, TxnKind::Write, 0, 0, 1, 0);
        push(&mut ch, 2, TxnKind::Write, 0, 0, 1, 0);
        let (t0, _) = run_until_issue(&mut ch, &timing, 0, &mut stats);
        let (t1, c1) = run_until_issue(&mut ch, &timing, t0 + 2, &mut stats);
        assert_eq!(c1.kind, IssuedKind::Write);
        assert_eq!(
            t1 - t0,
            timing.t_ccd,
            "same-row write should follow at exactly tCCD"
        );
    }

    #[test]
    fn refresh_blocks_rank_for_trfc() {
        let mut ch = Channel::new(1, 2, 10); // refresh due at cycle 10
        let timing = t();
        let mut stats = DramStats::default();
        push(&mut ch, 1, TxnKind::Read, 0, 0, 3, 0);
        // Advance past the refresh due time with an empty pipeline: the
        // refresh itself is now an observable command.
        let (t_ref, c) = run_until_issue(&mut ch, &timing, 10, &mut stats);
        assert_eq!(c.kind, IssuedKind::Refresh);
        assert_eq!(c.loc.rank, 0);
        let (t_act, c) = run_until_issue(&mut ch, &timing, t_ref + 2, &mut stats);
        assert_eq!(c.kind, IssuedKind::Activate);
        assert!(
            t_act >= t_ref + timing.t_rfc,
            "ACT at {t_act} during refresh"
        );
        assert_eq!(stats.energy.refreshes, 1);
    }

    #[test]
    fn faw_throttles_five_activates() {
        let mut ch = mk_channel();
        let timing = t();
        let mut stats = DramStats::default();
        for b in 0..4 {
            push(&mut ch, b as u64, TxnKind::Read, 0, b, 1, 0);
        }
        // A fifth ACT must wait for the tFAW window even though its bank
        // is free (banks 0..3 reused is a conflict, so use rank 0 bank 0
        // row 2 after the others? simpler: five distinct banks needed).
        let mut acts = Vec::new();
        let mut now = 0;
        while acts.len() < 4 {
            let mut issued = Vec::new();
            let _ = schedule_slot(&mut ch, CH, &timing, now, 64, &mut stats, &mut issued);
            for c in issued {
                if c.kind == IssuedKind::Activate {
                    assert_eq!(c.loc.channel, CH);
                    acts.push(now);
                }
            }
            now += timing.cmd_clock_divisor;
        }
        // tRRD spacing between consecutive ACTs.
        for w in acts.windows(2) {
            assert!(w[1] - w[0] >= timing.t_rrd);
        }
        // Verify the tFAW window arithmetic on the rank state directly:
        assert!(!ch.ranks[0].faw_allows_act(acts[3] + 1, timing.t_faw));
        assert!(ch.ranks[0].faw_allows_act(acts[0] + timing.t_faw, timing.t_faw));
    }
}
