//! Process signal plumbing for graceful shutdown, with no external
//! crates: on unix we register flag-setting handlers for `SIGINT` and
//! `SIGTERM` straight through libc's `signal(2)` (std already links
//! libc), elsewhere the module degrades to an explicit-request-only
//! flag.
//!
//! The handler does the only async-signal-safe thing there is to do —
//! it stores into a static atomic. The server's accept loop polls
//! [`requested`] and turns it into a drain.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod os {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        pub fn signal(signum: i32, handler: usize) -> usize;
        pub fn raise(signum: i32) -> i32;
    }

    pub extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

/// Installs the `SIGINT`/`SIGTERM` handlers. Idempotent; a no-op off
/// unix.
pub fn install() {
    #[cfg(unix)]
    unsafe {
        os::signal(os::SIGINT, os::on_signal as extern "C" fn(i32) as usize);
        os::signal(os::SIGTERM, os::on_signal as extern "C" fn(i32) as usize);
    }
}

/// True once a shutdown signal (or [`request`]) has been seen.
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests shutdown programmatically (what `POST /shutdown` maps to
/// in the binary when it wants to stop the accept loop, and the
/// portable fallback for platforms without signals).
pub fn request() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag — test use only (the flag is process-global).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Sends this process a real `SIGTERM` (test use: proves the installed
/// handler, not just the flag). Falls back to [`request`] off unix.
pub fn raise_sigterm() {
    #[cfg(unix)]
    unsafe {
        os::raise(os::SIGTERM);
    }
    #[cfg(not(unix))]
    request();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_catches_a_real_sigterm() {
        install();
        reset();
        assert!(!requested());
        raise_sigterm();
        // The handler runs synchronously in this thread on unix; give
        // other platforms' fallback a moment anyway.
        for _ in 0..100 {
            if requested() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(requested(), "SIGTERM did not set the shutdown flag");
        reset();
    }
}
