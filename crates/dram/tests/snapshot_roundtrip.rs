//! Snapshot/restore round-trips for the DRAM system (DESIGN.md §3.13).
//!
//! Strategy: drive a system to an arbitrary mid-flight point, capture
//! its state, install the state into a freshly built system (directly
//! and through the wire codec), then step original and restored copies
//! in lockstep and require identical observable behaviour — the same
//! completions in the same order at the same cycles, the same stats,
//! the same audit verdict. The cases cover the hard state deliberately:
//! a transaction queue overflowing its 32-entry scheduler window and a
//! snapshot taken while a rank is mid-refresh.

use proptest::prelude::*;
use redcache_dram::{DramConfig, DramSystem, DramSystemState, TxnKind};
use redcache_types::wire::{Reader, Wire};
use redcache_types::{PhysAddr, Restorable, Snapshot};

/// One injected transaction: enqueue `addr` at `at`.
#[derive(Debug, Clone, Copy)]
struct Op {
    at: u64,
    addr: u64,
    kind: TxnKind,
    bursts: u32,
}

fn drive(sys: &mut DramSystem, ops: &[Op], from: u64, to: u64) -> Vec<redcache_dram::Completion> {
    let mut done = Vec::new();
    for now in from..to {
        for op in ops.iter().filter(|o| o.at == now) {
            sys.enqueue(PhysAddr::new(op.addr), op.kind, op.addr, op.bursts, now);
        }
        sys.tick(now);
        sys.drain_completions_into(&mut done);
    }
    done
}

/// Runs `ops` on `cfg`, snapshots at `snap_at`, and checks that the
/// original, a directly restored copy, and a wire round-tripped copy
/// all agree over the remaining `tail` cycles.
fn assert_forkable(cfg: DramConfig, ops: &[Op], snap_at: u64, tail: u64) {
    let mut orig = DramSystem::new(cfg);
    drive(&mut orig, ops, 0, snap_at);
    let state = orig.snapshot();

    // Direct restore.
    let mut forked = DramSystem::new(cfg);
    forked.restore(&state);

    // Wire round-trip restore: encode, decode, byte-identical re-encode.
    let mut bytes = Vec::new();
    state.put(&mut bytes);
    let mut r = Reader::new(&bytes);
    let decoded = DramSystemState::get(&mut r).expect("state decodes");
    assert!(r.is_empty(), "decode must consume the whole payload");
    let mut re = Vec::new();
    decoded.put(&mut re);
    assert_eq!(bytes, re, "snapshot encoding must be deterministic");
    let mut wired = DramSystem::new(cfg);
    wired.restore(&decoded);

    // Lockstep continuation: identical completions, stats and horizon.
    let end = snap_at + tail;
    let a = drive(&mut orig, ops, snap_at, end);
    let b = drive(&mut forked, ops, snap_at, end);
    let c = drive(&mut wired, ops, snap_at, end);
    assert_eq!(a, b, "forked copy diverged from the original");
    assert_eq!(a, c, "wire round-tripped copy diverged from the original");
    assert_eq!(orig.stats(), forked.stats());
    assert_eq!(orig.stats(), wired.stats());
    assert_eq!(orig.pending(), forked.pending());
    assert_eq!(orig.next_event(end), forked.next_event(end));
    assert_eq!(orig.next_event(end), wired.next_event(end));
    assert_eq!(orig.audit_stats(), forked.audit_stats());
    assert_eq!(orig.audit_stats(), wired.audit_stats());
}

/// A burst of transactions dense enough to overflow the 32-entry
/// scheduler window on channel 0.
fn window_overflow_ops() -> Vec<Op> {
    (0..48)
        .map(|i| Op {
            at: i / 4,
            // Same channel, spread over rows: lots of row conflicts keep
            // the queue deep while the window promotes in arrival order.
            addr: i * 0x1_0000,
            kind: if i % 3 == 0 {
                TxnKind::Write
            } else {
                TxnKind::Read
            },
            bursts: 1 + (i % 2) as u32,
        })
        .collect()
}

#[test]
fn overflowing_window_snapshot_continues_in_lockstep() {
    let mut cfg = DramConfig::ddr4_table1();
    cfg.audit = true;
    // Snapshot while the window is saturated and transactions are still
    // queued behind it.
    assert_forkable(cfg, &window_overflow_ops(), 40, 4_000);
}

#[test]
fn snapshot_mid_refresh_preserves_the_refresh_window() {
    let cfg = DramConfig::ddr4_table1();
    // Keep a trickle of work flowing past the first refresh wave
    // (t_refi = 24 960, staggered per rank), then snapshot at a cycle
    // chosen to land inside some rank's tRFC window.
    let ops: Vec<Op> = (0..200)
        .map(|i| Op {
            at: i * 40,
            addr: i * 0x880,
            kind: TxnKind::Read,
            bursts: 1,
        })
        .collect();
    let mut probe = DramSystem::new(cfg);
    let mut snap_at = None;
    for now in 0..40_000u64 {
        for op in ops.iter().filter(|o| o.at == now) {
            probe.enqueue(PhysAddr::new(op.addr), op.kind, op.addr, op.bursts, now);
        }
        probe.tick(now);
        probe.drain_completions();
        if now > 0 && probe.is_rank_refreshing(PhysAddr::new(0), now) {
            snap_at = Some(now);
            break;
        }
    }
    let snap_at = snap_at.expect("a refresh fires within two tREFI");
    assert_forkable(cfg, &ops, snap_at, 30_000);
}

#[test]
fn snapshot_of_wideio_system_with_multi_burst_txns_round_trips() {
    let mut cfg = DramConfig::wideio_table1();
    cfg.audit = true;
    let ops: Vec<Op> = (0..64)
        .map(|i| Op {
            at: i * 7,
            addr: i * 0x2_0040,
            kind: if i % 4 == 0 {
                TxnKind::Write
            } else {
                TxnKind::Read
            },
            bursts: 4,
        })
        .collect();
    assert_forkable(cfg, &ops, 301, 6_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary traffic, arbitrary snapshot point: the fork must be
    /// undetectable from the observable behaviour.
    #[test]
    fn random_traffic_snapshots_are_lockstep_equal(
        seed_ops in proptest::collection::vec(
            (0u64..600, 0u64..0x40_0000u64, any::<bool>(), 1u32..3),
            1..60,
        ),
        snap_at in 1u64..900,
        audit in any::<bool>(),
    ) {
        let ops: Vec<Op> = seed_ops
            .into_iter()
            .map(|(at, block, write, bursts)| Op {
                at,
                addr: block * 64,
                kind: if write { TxnKind::Write } else { TxnKind::Read },
                bursts,
            })
            .collect();
        let mut cfg = DramConfig::ddr4_table1();
        cfg.audit = audit;
        assert_forkable(cfg, &ops, snap_at, 3_000);
    }
}
