//! Regression tests for the serve-layer hardening sweep and the epoll
//! event loop, over real sockets:
//!
//! (a) a 1 MiB newline-free request line is rejected with `400` and
//!     bounded memory (the daemon stops reading at the header cap),
//! (b) a client that submits a request and then never reads the
//!     response cannot wedge shutdown (deadline sweeps / write
//!     timeouts bound the flush; `Server::run` asserts the drain-time
//!     bound),
//! (c) conflicting duplicate `Content-Length` headers get a `400` over
//!     the wire, not just in the parser unit tests,
//! (d) N pipelined requests on one socket get N in-order responses,
//! (e) a keep-alive connection persists until `Connection: close`,
//! (f) accepts beyond `max_connections` are answered `503`,
//! (g) the client rides one keep-alive connection across many calls
//!     (connection-count assertion on the server's own counters).
//!
//! The shutdown flag is process-global, so every test serializes on
//! one mutex and resets the flag around itself (same pattern as
//! `e2e.rs`).

use redcache_serve::{signals, Client, ServeOptions, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static GUARD: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    signals::reset();
    g
}

struct Harness {
    client: Client,
    addr: std::net::SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start() -> Harness {
    start_with(ServeOptions::default())
}

fn start_with(mut opts: ServeOptions) -> Harness {
    signals::install();
    opts.addr = "127.0.0.1:0".into();
    opts.workers = 1;
    opts.queue_capacity = 4;
    opts.spool = None;
    let server = Server::bind(&opts).expect("bind ephemeral port");
    let addr = server.local_addr();
    let client = Client::new(addr.to_string());
    let thread = std::thread::spawn(move || server.run());
    Harness {
        client,
        addr,
        thread,
    }
}

/// Extracts one un-labelled series value from Prometheus text.
fn metric(text: &str, name: &str) -> f64 {
    let prefix = format!("redcache_serve_{name} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{text}"))
        .trim()
        .parse()
        .expect("metric value parses")
}

/// Reads one `Content-Length`-framed response off `reader`, returning
/// `(status, connection_header)`.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut line = String::new();
    assert!(
        reader.read_line(&mut line).expect("status line") > 0,
        "connection closed instead of a response"
    );
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut content_length = 0usize;
    let mut connection = String::new();
    loop {
        let mut h = String::new();
        assert!(reader.read_line(&mut h).expect("header") > 0);
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().expect("content-length");
            } else if k.trim().eq_ignore_ascii_case("connection") {
                connection = v.trim().to_string();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, connection)
}

/// Stops the daemon and joins its thread with a watchdog, so a wedged
/// handler fails the test instead of hanging the suite forever.
fn shutdown_and_join(h: Harness) {
    let res = h.client.shutdown().expect("shutdown I/O");
    assert_eq!(res.status, 202, "unexpected response: {}", res.text());
    let deadline = Instant::now() + Duration::from_secs(60);
    while !h.thread.is_finished() {
        assert!(
            Instant::now() < deadline,
            "server did not drain within the watchdog window"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    h.thread.join().expect("server thread").expect("run result");
}

#[test]
fn megabyte_request_line_gets_400_and_connection_close() {
    let _g = serial();
    let h = start();

    let mut stream = TcpStream::connect(h.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_millis(250)))
        .unwrap();
    let chunk = [b'A'; 8 << 10];
    let mut resp = Vec::new();
    let mut buf = [0u8; 4096];
    let mut sent = 0usize;
    // Stream up to 1 MiB with no newline, polling for the early 400
    // between chunks. The daemon stops reading at its 64 KiB header
    // cap and answers long before the full MiB is accepted; once bytes
    // arrive (or the daemon closes on us) we stop writing so the
    // response is not lost to a reset.
    while sent < (1 << 20) && resp.is_empty() {
        match stream.write(&chunk) {
            Ok(n) => sent += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => resp.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    // Drain the rest of the response (the daemon closes after one
    // request), bounded by a deadline.
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => resp.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&resp);
    assert!(
        text.starts_with("HTTP/1.1 400 "),
        "expected an early 400, got {:?} after sending {sent} bytes",
        &text[..text.len().min(120)]
    );
    assert!(
        sent < (1 << 20),
        "daemon kept reading the whole MiB instead of cutting off at the cap"
    );
    drop(stream);

    shutdown_and_join(h);
}

#[test]
fn conflicting_content_lengths_get_400_over_the_wire() {
    let _g = serial();
    let h = start();

    let mut stream = TcpStream::connect(h.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 6\r\n\r\nbody!!")
        .unwrap();
    let mut resp = String::new();
    let _ = stream.read_to_string(&mut resp);
    assert!(
        resp.starts_with("HTTP/1.1 400 "),
        "expected 400 for smuggling-shaped request, got {:?}",
        &resp[..resp.len().min(120)]
    );
    drop(stream);

    shutdown_and_join(h);
}

#[test]
fn slow_reader_does_not_wedge_shutdown() {
    let _g = serial();
    let h = start();

    // A client that sends a complete request and then never reads the
    // response. The handler's write is bounded by the write timeout
    // (set_write_timeout — the once-missing half), so the drain below
    // must finish within the watchdog window; `Server::run` itself
    // also debug-asserts the drain-time bound.
    let mut lazy = TcpStream::connect(h.addr).expect("connect");
    lazy.write_all(b"GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    // Give the handler a moment to pick the request up before draining.
    std::thread::sleep(Duration::from_millis(100));

    shutdown_and_join(h);
    // Only now release the socket the daemon was (potentially) blocked
    // writing to.
    drop(lazy);
}

/// (d) Pipelining: several back-to-back requests written in one burst
/// get their responses in request order on the same socket.
#[cfg(unix)]
#[test]
fn pipelined_requests_get_in_order_responses() {
    use redcache_serve::Engine;
    let _g = serial();
    let h = start_with(ServeOptions {
        engine: Engine::Epoll,
        ..ServeOptions::default()
    });

    let stream = TcpStream::connect(h.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    // Distinguishable endpoints so a reordering would change the
    // status sequence: 200, 404, 200, 404, 200.
    writer
        .write_all(
            b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n\
              GET /jobs/7 HTTP/1.1\r\nhost: t\r\n\r\n\
              GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n\
              GET /jobs/8 HTTP/1.1\r\nhost: t\r\n\r\n\
              GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n",
        )
        .unwrap();
    writer.flush().unwrap();

    let mut reader = BufReader::new(stream);
    let expected = [200u16, 404, 200, 404, 200];
    for (i, want) in expected.iter().enumerate() {
        let (status, connection) = read_response(&mut reader);
        assert_eq!(status, *want, "response {i} out of order");
        assert_eq!(connection, "keep-alive", "response {i} must keep alive");
    }
    drop(reader);
    drop(writer);

    shutdown_and_join(h);
}

/// (e) Keep-alive persists across requests; `Connection: close` is
/// honored with a closing response followed by EOF.
#[cfg(unix)]
#[test]
fn keepalive_until_connection_close() {
    use redcache_serve::Engine;
    let _g = serial();
    let h = start_with(ServeOptions {
        engine: Engine::Epoll,
        ..ServeOptions::default()
    });

    let stream = TcpStream::connect(h.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    for _ in 0..3 {
        writer
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        let (status, connection) = read_response(&mut reader);
        assert_eq!(status, 200);
        assert_eq!(connection, "keep-alive");
    }

    writer
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .unwrap();
    let (status, connection) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(connection, "close");
    // And the server actually closes: next read is EOF.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("read to EOF");
    assert!(
        rest.is_empty(),
        "bytes after the closing response: {rest:?}"
    );

    shutdown_and_join(h);
}

/// (f) Accepts beyond `max_connections` get a diagnosable `503` and an
/// immediate close instead of silently starving in the backlog.
#[cfg(unix)]
#[test]
fn accepts_beyond_max_connections_get_503() {
    use redcache_serve::Engine;
    let _g = serial();
    let h = start_with(ServeOptions {
        engine: Engine::Epoll,
        max_connections: 4,
        ..ServeOptions::default()
    });

    // Fill the admission limit with live keep-alive connections; a
    // full request/response on each proves the slot is held.
    let occupants: Vec<BufReader<TcpStream>> = (0..4)
        .map(|_| {
            let stream = TcpStream::connect(h.addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            writer
                .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
                .unwrap();
            let (status, _) = read_response(&mut reader);
            assert_eq!(status, 200);
            reader
        })
        .collect();

    // The fifth connection is over the limit.
    let mut extra = TcpStream::connect(h.addr).expect("connect");
    extra
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    extra
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    let _ = extra.read_to_string(&mut resp);
    assert!(
        resp.starts_with("HTTP/1.1 503 "),
        "expected accept-then-503, got {:?}",
        &resp[..resp.len().min(120)]
    );
    drop(extra);

    // Release the slots and wait for the daemon to notice the closes,
    // then confirm admission works again end to end.
    drop(occupants);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(res) = h.client.healthz() {
            if res.status == 200 {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "admission never recovered after occupants closed"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let text = h.client.metrics().unwrap().text();
    assert!(metric(&text, "http_429_or_503_total") >= 1.0);

    shutdown_and_join(h);
}

/// (g) The satellite connection-count assertion: many `Client` calls
/// ride one keep-alive connection — the server's own accept counter
/// says so.
#[cfg(unix)]
#[test]
fn client_reuses_one_connection_across_calls() {
    use redcache_serve::Engine;
    let _g = serial();
    let h = start_with(ServeOptions {
        engine: Engine::Epoll,
        ..ServeOptions::default()
    });

    for _ in 0..5 {
        assert_eq!(h.client.healthz().unwrap().status, 200);
    }
    for _ in 0..3 {
        assert_eq!(h.client.metrics().unwrap().status, 200);
    }
    let text = h.client.metrics().unwrap().text();
    assert_eq!(
        metric(&text, "connections_accepted_total"),
        1.0,
        "client must reuse a single keep-alive connection:\n{text}"
    );
    assert!(
        metric(&text, "keepalive_reuses_total") >= 8.0,
        "expected at least 8 reuses:\n{text}"
    );
    assert_eq!(metric(&text, "connections_open"), 1.0);

    shutdown_and_join(h);
}
