//! Regression tests for the serve-layer hardening sweep, over real
//! sockets:
//!
//! (a) a 1 MiB newline-free request line is rejected with `400` and
//!     bounded memory (the daemon stops reading at the header cap),
//! (b) a client that submits a request and then never reads the
//!     response cannot wedge shutdown (write timeouts bound the
//!     handler; `Server::run` asserts the drain-time bound),
//! (c) conflicting duplicate `Content-Length` headers get a `400` over
//!     the wire, not just in the parser unit tests.
//!
//! The shutdown flag is process-global, so every test serializes on
//! one mutex and resets the flag around itself (same pattern as
//! `e2e.rs`).

use redcache_serve::{signals, Client, ServeOptions, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static GUARD: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    signals::reset();
    g
}

struct Harness {
    client: Client,
    addr: std::net::SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start() -> Harness {
    signals::install();
    let server = Server::bind(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 4,
        spool: None,
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let client = Client::new(addr.to_string());
    let thread = std::thread::spawn(move || server.run());
    Harness {
        client,
        addr,
        thread,
    }
}

/// Stops the daemon and joins its thread with a watchdog, so a wedged
/// handler fails the test instead of hanging the suite forever.
fn shutdown_and_join(h: Harness) {
    let res = h.client.shutdown().expect("shutdown I/O");
    assert_eq!(res.status, 202, "unexpected response: {}", res.text());
    let deadline = Instant::now() + Duration::from_secs(60);
    while !h.thread.is_finished() {
        assert!(
            Instant::now() < deadline,
            "server did not drain within the watchdog window"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    h.thread.join().expect("server thread").expect("run result");
}

#[test]
fn megabyte_request_line_gets_400_and_connection_close() {
    let _g = serial();
    let h = start();

    let mut stream = TcpStream::connect(h.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_millis(250)))
        .unwrap();
    let chunk = [b'A'; 8 << 10];
    let mut resp = Vec::new();
    let mut buf = [0u8; 4096];
    let mut sent = 0usize;
    // Stream up to 1 MiB with no newline, polling for the early 400
    // between chunks. The daemon stops reading at its 64 KiB header
    // cap and answers long before the full MiB is accepted; once bytes
    // arrive (or the daemon closes on us) we stop writing so the
    // response is not lost to a reset.
    while sent < (1 << 20) && resp.is_empty() {
        match stream.write(&chunk) {
            Ok(n) => sent += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => resp.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    // Drain the rest of the response (the daemon closes after one
    // request), bounded by a deadline.
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => resp.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&resp);
    assert!(
        text.starts_with("HTTP/1.1 400 "),
        "expected an early 400, got {:?} after sending {sent} bytes",
        &text[..text.len().min(120)]
    );
    assert!(
        sent < (1 << 20),
        "daemon kept reading the whole MiB instead of cutting off at the cap"
    );
    drop(stream);

    shutdown_and_join(h);
}

#[test]
fn conflicting_content_lengths_get_400_over_the_wire() {
    let _g = serial();
    let h = start();

    let mut stream = TcpStream::connect(h.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 6\r\n\r\nbody!!",
        )
        .unwrap();
    let mut resp = String::new();
    let _ = stream.read_to_string(&mut resp);
    assert!(
        resp.starts_with("HTTP/1.1 400 "),
        "expected 400 for smuggling-shaped request, got {:?}",
        &resp[..resp.len().min(120)]
    );
    drop(stream);

    shutdown_and_join(h);
}

#[test]
fn slow_reader_does_not_wedge_shutdown() {
    let _g = serial();
    let h = start();

    // A client that sends a complete request and then never reads the
    // response. The handler's write is bounded by the write timeout
    // (set_write_timeout — the once-missing half), so the drain below
    // must finish within the watchdog window; `Server::run` itself
    // also debug-asserts the drain-time bound.
    let mut lazy = TcpStream::connect(h.addr).expect("connect");
    lazy.write_all(b"GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    // Give the handler a moment to pick the request up before draining.
    std::thread::sleep(Duration::from_millis(100));

    shutdown_and_join(h);
    // Only now release the socket the daemon was (potentially) blocked
    // writing to.
    drop(lazy);
}
