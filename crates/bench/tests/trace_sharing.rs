//! Verifies the harness's one-generation-per-workload contract with the
//! process-wide generation counter.
//!
//! Kept as a single `#[test]` in its own integration-test binary: the
//! counter is process-global, so sibling tests running generators in
//! parallel would make the delta ambiguous.

use redcache::{PolicyKind, SimConfig};
use redcache_bench::{run_matrix_timed, RunSpec};
use redcache_workloads::{generation_count, GenConfig, Workload};

#[test]
fn matrix_generates_each_workload_exactly_once() {
    let gen = GenConfig::tiny();
    let policies = [PolicyKind::NoHbm, PolicyKind::Alloy, PolicyKind::Ideal];
    let workloads = [Workload::Lreg, Workload::Hist];
    let mut specs = Vec::new();
    for &w in &workloads {
        for &p in &policies {
            specs.push(RunSpec {
                workload: w,
                policy: p,
                cfg: SimConfig::quick(p),
            });
        }
    }

    let before = generation_count();
    let timed = run_matrix_timed(&specs, &gen);
    let after = generation_count();

    // 6 simulations, 2 distinct workloads: exactly 2 generations.
    assert_eq!(
        after - before,
        workloads.len() as u64,
        "matrix re-generated traces per spec instead of per workload"
    );
    assert_eq!(timed.len(), specs.len());
    // Results stay in spec order, and every spec of a workload reports
    // that workload's (single) generation time.
    for (spec, t) in specs.iter().zip(&timed) {
        assert_eq!(
            t.report.workload.as_deref(),
            Some(spec.workload.info().label)
        );
        assert!(t.gen_s >= 0.0);
    }
    assert_eq!(timed[0].gen_s, timed[1].gen_s);
    assert_eq!(timed[3].gen_s, timed[5].gen_s);
}
