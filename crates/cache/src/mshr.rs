//! Miss-status holding registers for the L3↔memory boundary.
//!
//! Concurrent L3 misses to the same line are merged: only the first
//! allocates an entry (and generates a memory read); the rest attach as
//! waiters and are all released when the fill returns.

use redcache_types::LineAddr;
use std::collections::HashMap;

/// Outcome of registering a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated — a memory read must be issued.
    Allocated,
    /// Merged into an existing entry — no new memory traffic.
    Merged,
    /// The MSHR file is full — the miss must be retried later.
    Full,
}

/// An MSHR file with a bounded number of entries. Waiters are opaque
/// `u64` tokens chosen by the caller (the CPU model uses them to wake
/// stalled instructions).
#[derive(Debug, Clone)]
pub struct Mshr {
    capacity: usize,
    entries: HashMap<LineAddr, Vec<u64>>,
    peak: usize,
    merges: u64,
}

impl Mshr {
    /// Creates an MSHR file holding up to `capacity` distinct lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        Self {
            capacity,
            entries: HashMap::new(),
            peak: 0,
            merges: 0,
        }
    }

    /// Registers a miss on `line` by `waiter`.
    pub fn register(&mut self, line: LineAddr, waiter: u64) -> MshrOutcome {
        if let Some(ws) = self.entries.get_mut(&line) {
            ws.push(waiter);
            self.merges += 1;
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(line, vec![waiter]);
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::Allocated
    }

    /// Completes the miss on `line`, returning all waiters (empty if the
    /// line had no entry).
    pub fn complete(&mut self, line: LineAddr) -> Vec<u64> {
        self.entries.remove(&line).unwrap_or_default()
    }

    /// True if `line` has an outstanding entry.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Outstanding distinct lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Number of merged (secondary) misses.
    pub fn merges(&self) -> u64 {
        self.merges
    }
}

redcache_types::wire_struct!(Mshr {
    capacity,
    entries,
    peak,
    merges,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge_then_complete() {
        let mut m = Mshr::new(2);
        assert_eq!(m.register(LineAddr::new(1), 10), MshrOutcome::Allocated);
        assert_eq!(m.register(LineAddr::new(1), 11), MshrOutcome::Merged);
        assert_eq!(m.register(LineAddr::new(2), 12), MshrOutcome::Allocated);
        assert_eq!(m.register(LineAddr::new(3), 13), MshrOutcome::Full);
        assert_eq!(m.len(), 2);
        let ws = m.complete(LineAddr::new(1));
        assert_eq!(ws, vec![10, 11]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.merges(), 1);
        assert_eq!(m.peak(), 2);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m = Mshr::new(1);
        assert!(m.complete(LineAddr::new(9)).is_empty());
        assert!(m.is_empty());
    }
}
