//! Cache geometry (size / associativity / block size → sets).

use serde::{Deserialize, Serialize};

/// Geometry of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Block (line) size in bytes.
    pub block_bytes: usize,
}

redcache_types::wire_struct!(CacheGeometry {
    size_bytes,
    ways,
    block_bytes,
});

impl CacheGeometry {
    /// Creates a geometry, checking divisibility.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of
    /// `ways * block_bytes`, if any field is zero, or if the resulting
    /// set count is not a power of two.
    pub fn new(size_bytes: usize, ways: usize, block_bytes: usize) -> Self {
        assert!(
            size_bytes > 0 && ways > 0 && block_bytes > 0,
            "geometry fields must be nonzero"
        );
        assert!(
            size_bytes.is_multiple_of(ways * block_bytes),
            "capacity must divide into ways × block size"
        );
        let g = Self {
            size_bytes,
            ways,
            block_bytes,
        };
        assert!(
            g.sets().is_power_of_two(),
            "set count must be a power of two"
        );
        g
    }

    /// Number of sets.
    pub const fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.block_bytes)
    }

    /// Number of lines in total.
    pub const fn lines(&self) -> usize {
        self.size_bytes / self.block_bytes
    }

    /// Set index for a line address (line index modulo set count).
    pub fn set_of(&self, line_raw: u64) -> usize {
        (line_raw as usize) & (self.sets() - 1)
    }

    /// Table I L1 data cache: 64 KB, 4-way, 64 B blocks.
    pub fn l1d_table1() -> Self {
        Self::new(64 << 10, 4, 64)
    }

    /// Table I L2: 128 KB, 8-way, 64 B blocks.
    pub fn l2_table1() -> Self {
        Self::new(128 << 10, 8, 64)
    }

    /// Table I L3: 8 MB shared, 8-way, 64 B blocks.
    pub fn l3_table1() -> Self {
        Self::new(8 << 20, 8, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometries() {
        assert_eq!(CacheGeometry::l1d_table1().sets(), 256);
        assert_eq!(CacheGeometry::l2_table1().sets(), 256);
        assert_eq!(CacheGeometry::l3_table1().sets(), 16384);
    }

    #[test]
    fn set_mapping_wraps() {
        let g = CacheGeometry::new(4096, 4, 64); // 16 sets
        assert_eq!(g.sets(), 16);
        assert_eq!(g.set_of(0), 0);
        assert_eq!(g.set_of(16), 0);
        assert_eq!(g.set_of(17), 1);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn indivisible_geometry_panics() {
        let _ = CacheGeometry::new(1000, 3, 64);
    }

    #[test]
    fn line_count() {
        assert_eq!(CacheGeometry::l1d_table1().lines(), 1024);
    }
}
