//! Differential property tests: indexed FR-FCFS kernel vs the retained
//! linear-scan reference.
//!
//! [`redcache_dram::reference::ReferenceSystem`] is a frozen copy of the
//! pre-rewrite scan-based scheduler. The indexed kernel
//! ([`DramSystem`]) claims *bit-exact* equivalence, so both systems are
//! driven in lockstep through random enqueue/issue/retire sequences and
//! compared **every slot**: same command picks at the same issue cycles,
//! same completion stream, same statistics, and the same event-driven
//! horizon from [`DramSystem::next_event`].

use proptest::prelude::*;
use redcache_dram::reference::ReferenceSystem;
use redcache_dram::{DramConfig, DramSystem, Topology, TxnKind};
use redcache_types::{Cycle, PhysAddr};

const INJECT_PERIOD: Cycle = 4;

fn small_config(wideio: bool) -> DramConfig {
    let base = if wideio {
        DramConfig::wideio_scaled(16 << 20)
    } else {
        DramConfig::ddr4_scaled(64 << 20)
    };
    base.to_builder()
        .refresh_enabled(true)
        .build()
        .expect("preset-derived config validates")
}

fn multi_channel_config() -> DramConfig {
    small_config(false)
        .to_builder()
        .topology(Topology::from_capacity(4, 2, 8, 8192, 64, 64 << 20))
        .build()
        .expect("multi-channel topology validates")
}

/// Drives the indexed system and the reference cycle by cycle with the
/// same injected traffic, asserting observable equality at every tick.
fn check_lockstep(cfg: DramConfig, txns: &[(u64, bool, u8)]) {
    let capacity = cfg.topology.capacity_bytes();
    let mut indexed = DramSystem::new(cfg);
    indexed.set_cmd_recording(true);
    let mut reference = ReferenceSystem::new(cfg);

    let mut now: Cycle = 0;
    let mut it = txns.iter();
    let mut next = it.next();
    while next.is_some() || indexed.pending() > 0 {
        if now % INJECT_PERIOD == 0 {
            if let Some(&(addr, is_write, bursts)) = next {
                let kind = if is_write {
                    TxnKind::Write
                } else {
                    TxnKind::Read
                };
                let b = (bursts % 4) as u32 + 1;
                let addr = PhysAddr::new(addr % capacity);
                let ia = indexed.enqueue(addr, kind, now, b, now);
                let ib = reference.enqueue(addr, kind, now, b, now);
                assert_eq!(ia, ib, "transaction ids diverged at cycle {now}");
                next = it.next();
            }
        }
        indexed.tick(now);
        reference.tick(now);

        // Same command picks at the same issue cycles, every slot.
        assert_eq!(
            indexed.take_issued_cmds(),
            reference.take_issued_cmds(),
            "command picks diverged at cycle {now}"
        );
        // Same retirements, in the same order.
        assert_eq!(
            indexed.drain_completions(),
            reference.drain_completions(),
            "completions diverged at cycle {now}"
        );
        // Whole-statistics equality every slot (commands, energy
        // events, latency, slot and occupancy accounting).
        assert_eq!(
            indexed.stats(),
            reference.stats(),
            "statistics diverged at cycle {now}"
        );
        // The event-driven horizon must be the same function of state.
        assert_eq!(
            indexed.next_event(now),
            reference.next_event(now),
            "next_event horizons diverged at cycle {now}"
        );

        now += 1;
        assert!(now < 50_000_000, "scheduler deadlock");
    }
    assert_eq!(reference.pending(), 0, "reference retained pending work");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ddr4_indexed_kernel_matches_reference(
        txns in prop::collection::vec((any::<u64>(), any::<bool>(), any::<u8>()), 1..80)
    ) {
        check_lockstep(small_config(false), &txns);
    }

    #[test]
    fn wideio_indexed_kernel_matches_reference(
        txns in prop::collection::vec((any::<u64>(), any::<bool>(), any::<u8>()), 1..80)
    ) {
        check_lockstep(small_config(true), &txns);
    }

    /// Hot-row traffic keeps banks open and the hit counters busy —
    /// the adversarial case for the incremental bookkeeping.
    #[test]
    fn hot_row_indexed_kernel_matches_reference(
        rows in prop::collection::vec(0u64..4, 1..120),
        writes in prop::collection::vec(any::<bool>(), 1..120)
    ) {
        let txns: Vec<(u64, bool, u8)> = rows
            .iter()
            .zip(writes.iter().cycle())
            .map(|(&r, &w)| (r * 1024 * 1024, w, 0))
            .collect();
        check_lockstep(small_config(false), &txns);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn multi_channel_indexed_kernel_matches_reference(
        txns in prop::collection::vec((any::<u64>(), any::<bool>(), any::<u8>()), 1..80)
    ) {
        check_lockstep(multi_channel_config(), &txns);
    }
}

/// Deep queues: more transactions than `SCHED_WINDOW` per channel, so
/// window promotion on retirement is exercised continuously.
#[test]
fn overflowing_window_matches_reference() {
    // 96 single-bank-group transactions against one DDR4 channel
    // topology — queue depth far exceeds the 32-entry window.
    let mut cfg = small_config(false);
    cfg.topology = Topology::from_capacity(1, 1, 4, 4096, 64, 16 << 20);
    let txns: Vec<(u64, bool, u8)> = (0..96u64)
        .map(|i| (i * 7919 * 64, i % 3 == 0, (i % 5) as u8))
        .collect();
    check_lockstep(cfg, &txns);
}
