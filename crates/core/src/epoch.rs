//! Epoch-resolved observability: per-interval statistics derived from
//! the counters the simulator already maintains.
//!
//! The [`EpochRecorder`] closes an *epoch* every `epoch_cycles` CPU
//! cycles. Each close snapshots every cumulative counter block
//! (controller, both DRAM systems, all three cache levels), subtracts
//! the previous snapshot via the `delta` methods, and captures the
//! controller's live gauges (RedCache α/γ, RCU queue depth, scheduler
//! window occupancy, per-channel write-drain mode). The result is a
//! [`TimeSeries`] on the [`crate::RunReport`]: the within-run dynamics
//! of every quantity the end-of-run aggregates summarise.
//!
//! Recording is *observational by construction* — it reads counters
//! that exist anyway and never feeds anything back into the simulated
//! machine — and it is exact under event-driven time advance: the main
//! loop adds epoch boundaries to the skip horizon, and landing on a
//! boundary early is a no-op tick by the `next_event` lower-bound
//! contract. DESIGN.md §3.9 gives the full argument.

use redcache_cache::CacheStats;
use redcache_dram::DramStats;
use redcache_energy::CPU_HZ;
use redcache_policies::{ControllerGauges, ControllerStats, DramCacheController};
use redcache_types::{Cycle, TenantStats};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::io::{self, Write};

/// One closed epoch: interval deltas of every counter block plus the
/// live gauges sampled at the closing boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSample {
    /// Zero-based epoch index.
    pub index: u64,
    /// First cycle covered (exclusive bound of the previous epoch).
    pub start: Cycle,
    /// Closing boundary cycle (inclusive).
    pub end: Cycle,
    /// Controller event counters accumulated in this epoch.
    pub ctl: ControllerStats,
    /// WideIO DRAM activity in this epoch (absent for No-HBM).
    pub hbm: Option<DramStats>,
    /// DDR4 DRAM activity in this epoch.
    pub ddr: DramStats,
    /// L1 aggregate activity in this epoch.
    pub l1: CacheStats,
    /// L2 aggregate activity in this epoch.
    pub l2: CacheStats,
    /// Shared-L3 activity in this epoch.
    pub l3: CacheStats,
    /// Live gauges at the closing boundary (not deltas).
    pub gauges: ControllerGauges,
    /// Per-tenant traffic deltas for this epoch (empty unless the run
    /// declared a [`redcache_types::TenantSchedule`]; DESIGN.md §3.15).
    #[serde(default)]
    pub tenants: Vec<TenantStats>,
}

redcache_types::wire_struct!(EpochSample {
    index,
    start,
    end,
    ctl,
    hbm,
    ddr,
    l1,
    l2,
    l3,
    gauges,
    tenants,
});

impl EpochSample {
    /// Cycles covered by this epoch (≥ 1 for all but degenerate tails).
    pub fn cycles(&self) -> Cycle {
        self.end.saturating_sub(self.start) + 1
    }

    /// HBM-cache hit rate over this epoch's probes (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.ctl.hbm_hits + self.ctl.hbm_misses;
        if total == 0 {
            0.0
        } else {
            self.ctl.hbm_hits as f64 / total as f64
        }
    }

    /// Mean read latency over this epoch's completed reads (cycles).
    pub fn mean_read_latency(&self) -> f64 {
        if self.ctl.reads_completed == 0 {
            0.0
        } else {
            self.ctl.read_latency_sum as f64 / self.ctl.reads_completed as f64
        }
    }

    fn gbps(&self, bytes: u64) -> f64 {
        let seconds = self.cycles() as f64 / CPU_HZ;
        bytes as f64 / seconds / 1e9
    }

    /// Consumed WideIO bandwidth over this epoch in GB/s.
    pub fn hbm_gbps(&self) -> f64 {
        self.gbps(self.hbm.map(|s| s.bytes_total()).unwrap_or(0))
    }

    /// Consumed DDR4 bandwidth over this epoch in GB/s.
    pub fn ddr_gbps(&self) -> f64 {
        self.gbps(self.ddr.bytes_total())
    }
}

/// The per-epoch series of one run, attached to
/// [`crate::RunReport::timeseries`] when
/// [`crate::SimConfig::epoch_cycles`] is set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Epoch stride in CPU cycles.
    pub epoch_cycles: Cycle,
    /// Index of the first epoch closed *after* the warmup statistics
    /// reset — the first whose deltas count toward the end-of-run
    /// aggregates. `None` when the run had no warmup reset.
    pub warmup_epoch: Option<u64>,
    /// All closed epochs, in time order. The last one is the partial
    /// tail epoch ending at the run's final cycle.
    pub epochs: Vec<EpochSample>,
}

/// The export row shared by the JSONL and CSV writers: (column name,
/// preformatted value). Numbers are emitted as plain JSON-compatible
/// literals so both formats stay hand-rolled (no serde_json needed on
/// this path — the `timeline` binary works even where serde_json is
/// unavailable).
fn row(e: &EpochSample) -> Vec<(&'static str, String)> {
    let hbm = e.hbm.unwrap_or_default();
    vec![
        ("epoch", e.index.to_string()),
        ("start", e.start.to_string()),
        ("end", e.end.to_string()),
        ("cycles", e.cycles().to_string()),
        ("hbm_read_bytes", hbm.bytes_read.to_string()),
        ("hbm_write_bytes", hbm.bytes_written.to_string()),
        ("hbm_gbps", format!("{:.6}", e.hbm_gbps())),
        ("ddr_read_bytes", e.ddr.bytes_read.to_string()),
        ("ddr_write_bytes", e.ddr.bytes_written.to_string()),
        ("ddr_gbps", format!("{:.6}", e.ddr_gbps())),
        ("hbm_hits", e.ctl.hbm_hits.to_string()),
        ("hbm_misses", e.ctl.hbm_misses.to_string()),
        ("hit_rate", format!("{:.6}", e.hit_rate())),
        ("fills", e.ctl.fills.to_string()),
        ("fill_bypasses", e.ctl.fill_bypasses.to_string()),
        ("hbm_bypasses", e.ctl.hbm_bypasses.to_string()),
        ("refresh_bypasses", e.ctl.refresh_bypasses.to_string()),
        ("mean_read_latency", format!("{:.6}", e.mean_read_latency())),
        ("alpha", format!("{:.6}", e.gauges.alpha)),
        ("gamma", format!("{:.6}", e.gauges.gamma)),
        ("rcu_depth", e.gauges.rcu_depth.to_string()),
        (
            "hbm_window_occupancy",
            e.gauges.hbm_window_occupancy.to_string(),
        ),
        (
            "ddr_window_occupancy",
            e.gauges.ddr_window_occupancy.to_string(),
        ),
        (
            "hbm_write_drain_mask",
            e.gauges.hbm_write_drain_mask.to_string(),
        ),
        (
            "ddr_write_drain_mask",
            e.gauges.ddr_write_drain_mask.to_string(),
        ),
        (
            "fbr_fill_credit",
            format!("{:.6}", e.gauges.fbr_fill_credit),
        ),
    ]
}

impl TimeSeries {
    /// Writes the series as JSON Lines: one flat object per epoch.
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O errors.
    pub fn write_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        for e in &self.epochs {
            let mut line = String::with_capacity(512);
            line.push('{');
            for (i, (k, v)) in row(e).iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "\"{k}\":{v}");
            }
            let post_warmup = self.warmup_epoch.is_some_and(|we| e.index >= we);
            let _ = write!(line, ",\"post_warmup\":{post_warmup}");
            line.push('}');
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Writes the series as CSV with a header row.
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O errors.
    pub fn write_csv(&self, w: &mut impl Write) -> io::Result<()> {
        for (i, e) in self.epochs.iter().enumerate() {
            let cols = row(e);
            if i == 0 {
                let names: Vec<&str> = cols.iter().map(|(k, _)| *k).collect();
                writeln!(w, "{},post_warmup", names.join(","))?;
            }
            let vals: Vec<String> = cols.into_iter().map(|(_, v)| v).collect();
            let post_warmup = self.warmup_epoch.is_some_and(|we| e.index >= we);
            writeln!(w, "{},{post_warmup}", vals.join(","))?;
        }
        Ok(())
    }
}

/// Baseline snapshots for delta computation: the cumulative counters as
/// of the previous epoch close (or the last warmup reset).
#[derive(Debug, Clone, Default)]
struct Baseline {
    ctl: ControllerStats,
    hbm: Option<DramStats>,
    ddr: DramStats,
    l1: CacheStats,
    l2: CacheStats,
    l3: CacheStats,
    tenants: Vec<TenantStats>,
}

redcache_types::wire_struct!(Baseline {
    ctl,
    hbm,
    ddr,
    l1,
    l2,
    l3,
    tenants
});

/// Closes epochs on a fixed cycle stride, turning the simulator's
/// cumulative counters into interval deltas.
///
/// The simulator calls [`EpochRecorder::sample`] once per main-loop
/// iteration (guarded by [`EpochRecorder::next_boundary`], so the
/// recording-off cost is one untaken branch), tells the recorder about
/// the warmup statistics reset via
/// [`EpochRecorder::note_warmup_reset`], and finalises the series with
/// [`EpochRecorder::finish`].
#[derive(Debug, Clone)]
pub struct EpochRecorder {
    stride: Cycle,
    next_boundary: Cycle,
    epoch_start: Cycle,
    warmup_epoch: Option<u64>,
    prev: Baseline,
    epochs: Vec<EpochSample>,
}

// Warm snapshots carry the recorder mid-series: epochs closed during
// the shared warmup appear identically in every forked run's series.
redcache_types::wire_struct!(EpochRecorder {
    stride,
    next_boundary,
    epoch_start,
    warmup_epoch,
    prev,
    epochs,
});

impl EpochRecorder {
    /// A recorder closing an epoch every `stride` cycles.
    ///
    /// # Panics
    ///
    /// Panics on a zero stride ([`crate::SimConfig::validate`] rejects
    /// it earlier).
    pub fn new(stride: Cycle) -> Self {
        assert!(stride > 0, "epoch stride must be nonzero");
        Self {
            stride,
            next_boundary: stride - 1,
            epoch_start: 0,
            warmup_epoch: None,
            prev: Baseline::default(),
            epochs: Vec::new(),
        }
    }

    /// The next cycle at which an epoch closes. The event-driven main
    /// loop adds this to its skip horizon so no boundary is jumped by
    /// an event skip (compute fast-forward may still jump several —
    /// those close late as zero-delta epochs, identically in both
    /// advance modes; DESIGN.md §3.9).
    pub fn next_boundary(&self) -> Cycle {
        self.next_boundary
    }

    /// Records that the warmup statistics reset just happened: all
    /// cumulative counters are zero again, so every baseline snapshot
    /// must drop to zero with them, and the epoch currently in progress
    /// only sees post-reset activity.
    pub fn note_warmup_reset(&mut self) {
        self.prev = Baseline::default();
        self.warmup_epoch = Some(self.epochs.len() as u64);
    }

    fn close(
        &mut self,
        end: Cycle,
        controller: &dyn DramCacheController,
        (l1, l2, l3): (CacheStats, CacheStats, CacheStats),
        tenants: &[TenantStats],
    ) {
        let ctl = controller.stats();
        let hbm = controller.hbm_stats();
        let ddr = controller.ddr_stats();
        let zero = TenantStats::default();
        self.epochs.push(EpochSample {
            index: self.epochs.len() as u64,
            start: self.epoch_start,
            end,
            ctl: ctl.delta(&self.prev.ctl),
            hbm: hbm.map(|h| h.delta(&self.prev.hbm.unwrap_or_default())),
            ddr: ddr.delta(&self.prev.ddr),
            l1: l1.delta(&self.prev.l1),
            l2: l2.delta(&self.prev.l2),
            l3: l3.delta(&self.prev.l3),
            gauges: controller.gauges(),
            tenants: tenants
                .iter()
                .enumerate()
                .map(|(i, t)| t.delta_since(self.prev.tenants.get(i).unwrap_or(&zero)))
                .collect(),
        });
        self.prev = Baseline {
            ctl,
            hbm,
            ddr,
            l1,
            l2,
            l3,
            tenants: tenants.to_vec(),
        };
        self.epoch_start = end + 1;
    }

    /// Closes every boundary at or before `now`. Called after the
    /// controller has ticked cycle `now`; when a compute fast-forward
    /// jumped several boundaries at once, the first close carries the
    /// full interval delta and the rest close as zero-delta epochs.
    pub fn sample(
        &mut self,
        now: Cycle,
        controller: &dyn DramCacheController,
        caches: (CacheStats, CacheStats, CacheStats),
        tenants: &[TenantStats],
    ) {
        while self.next_boundary <= now {
            let end = self.next_boundary;
            self.close(end, controller, caches, tenants);
            self.next_boundary += self.stride;
        }
    }

    /// Closes the partial tail epoch at the run's final cycle `end` and
    /// returns the finished series.
    pub fn finish(
        mut self,
        end: Cycle,
        controller: &dyn DramCacheController,
        caches: (CacheStats, CacheStats, CacheStats),
        tenants: &[TenantStats],
    ) -> TimeSeries {
        if end >= self.epoch_start || self.epochs.is_empty() {
            self.close(end.max(self.epoch_start), controller, caches, tenants);
        }
        TimeSeries {
            epoch_cycles: self.stride,
            warmup_epoch: self.warmup_epoch,
            epochs: self.epochs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(index: u64, start: Cycle, end: Cycle) -> EpochSample {
        EpochSample {
            index,
            start,
            end,
            ctl: ControllerStats {
                hbm_hits: 3,
                hbm_misses: 1,
                reads_completed: 4,
                read_latency_sum: 200,
                ..Default::default()
            },
            hbm: Some(DramStats {
                bytes_read: 1024,
                bytes_written: 512,
                ..Default::default()
            }),
            ddr: DramStats {
                bytes_read: 256,
                ..Default::default()
            },
            l1: CacheStats::default(),
            l2: CacheStats::default(),
            l3: CacheStats::default(),
            gauges: ControllerGauges {
                alpha: 0.5,
                gamma: 0.25,
                rcu_depth: 7,
                ..Default::default()
            },
            tenants: Vec::new(),
        }
    }

    #[test]
    fn derived_rates() {
        let e = sample(0, 0, 99);
        assert_eq!(e.cycles(), 100);
        assert!((e.hit_rate() - 0.75).abs() < 1e-12);
        assert!((e.mean_read_latency() - 50.0).abs() < 1e-12);
        assert!(e.hbm_gbps() > 0.0);
        assert!(e.ddr_gbps() > 0.0);
    }

    #[test]
    fn jsonl_and_csv_shapes() {
        let ts = TimeSeries {
            epoch_cycles: 100,
            warmup_epoch: Some(1),
            epochs: vec![sample(0, 0, 99), sample(1, 100, 199)],
        };
        let mut jsonl = Vec::new();
        ts.write_jsonl(&mut jsonl).unwrap();
        let jsonl = String::from_utf8(jsonl).unwrap();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"epoch\":0,"));
        assert!(lines[0].contains("\"alpha\":0.500000"));
        assert!(lines[0].ends_with("\"post_warmup\":false}"));
        assert!(lines[1].ends_with("\"post_warmup\":true}"));

        let mut csv = Vec::new();
        ts.write_csv(&mut csv).unwrap();
        let csv = String::from_utf8(csv).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 epochs
        let header_cols = lines[0].split(',').count();
        assert!(lines[0].starts_with("epoch,start,end,cycles,"));
        assert_eq!(lines[1].split(',').count(), header_cols);
    }
}
