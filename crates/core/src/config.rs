//! Whole-simulation configuration presets.

use redcache_cache::HierarchyConfig;
use redcache_cpu::CoreConfig;
use redcache_policies::{PolicyConfig, PolicyKind};
use redcache_types::{ConfigError, Cycle, TenantSchedule};
use serde::{Deserialize, Serialize};

/// Configuration of one full-system simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Controller architecture + DRAM organisation.
    pub policy: PolicyConfig,
    /// SRAM hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Core model parameters.
    pub core: CoreConfig,
    /// Hard cycle bound (a run exceeding it panics — deadlock guard).
    pub max_cycles: Cycle,
    /// Verify every read against the shadow memory (cheap; keep on).
    pub check_shadow: bool,
    /// Fraction of the trace treated as cache warmup: statistics reset
    /// when this fraction of accesses has committed (§IV.A: "warming up
    /// the cache until the cache is full; then we simulate").
    pub warmup_fraction: f64,
    /// Attach a runtime [`redcache_dram::TimingAuditor`] to both DRAM
    /// systems, re-validating every issued command against the Table I
    /// constraints as it streams out. Off by default: the audit is
    /// strictly observational but costs a per-command check.
    #[serde(default)]
    pub audit_timing: bool,
    /// Event-driven time advance: let the main loop jump from the
    /// current cycle straight to the next cycle at which a core or the
    /// memory system can act. Exact — every report is bit-identical to
    /// the cycle-by-cycle walk (see DESIGN.md §3.7) — so it defaults to
    /// on. The `REDCACHE_NO_SKIP=1` environment variable overrides it
    /// at run time for A/B checks.
    #[serde(default = "default_time_skip")]
    pub time_skip: bool,
    /// Epoch stride for the time-resolved recorder: `Some(n)` closes an
    /// epoch every `n` CPU cycles and attaches a
    /// [`crate::epoch::TimeSeries`] to the report. `None` (the default
    /// in every preset) records nothing and adds a single untaken
    /// branch per simulated cycle. Recording is exact: it never
    /// perturbs the simulation itself (DESIGN.md §3.9).
    #[serde(default)]
    pub epoch_cycles: Option<Cycle>,
    /// Step each DRAM system's channels on a worker pool inside `tick`
    /// (DESIGN.md §3.11). Bit-exact with the serial walk, so it changes
    /// throughput only. Off in every preset: a simulation *matrix*
    /// already fans out one simulation per worker, and nesting pools
    /// oversubscribes the machine. The `REDCACHE_CHANNEL_PAR`
    /// environment variable overrides it at run time (`1` forces on,
    /// `0` forces off) for single-simulation speed runs and A/B checks.
    #[serde(default)]
    pub channel_par: bool,
    /// Multi-tenant attribution (DESIGN.md §3.15): `Some(schedule)`
    /// declares that the trace was woven from N tenant streams by
    /// `redcache_workloads::multitenant::weave` under this schedule, and
    /// makes the simulator attribute per-tenant statistics by address
    /// region. `None` (the default in every preset) is the single-tenant
    /// run: no attribution, no per-tenant series. Purely observational —
    /// the simulated machine is identical either way.
    #[serde(default)]
    pub tenancy: Option<TenantSchedule>,
}

fn default_time_skip() -> bool {
    true
}

impl SimConfig {
    /// The paper's Table I configuration: 16 cores, 8 MB L3, 2 GB HBM,
    /// 32 GB DDR4. Intended for configuration reporting; simulating it
    /// end to end needs paper-scale traces.
    pub fn table1(kind: PolicyKind) -> Self {
        Self {
            policy: PolicyConfig::table1(kind),
            hierarchy: HierarchyConfig::table1(16),
            core: CoreConfig::table1(),
            max_cycles: 20_000_000_000,
            check_shadow: true,
            warmup_fraction: 0.3,
            audit_timing: false,
            time_skip: true,
            epoch_cycles: None,
            channel_par: false,
            tenancy: None,
        }
    }

    /// The scaled evaluation preset (DESIGN.md §1): identical
    /// organisation and timing, capacities shrunk in ratio (1 MB L3,
    /// 32 MB HBM, 512 MB DDR), 16 cores.
    pub fn scaled(kind: PolicyKind) -> Self {
        Self {
            policy: PolicyConfig::scaled(kind),
            hierarchy: HierarchyConfig::scaled(16),
            core: CoreConfig::table1(),
            max_cycles: 4_000_000_000,
            check_shadow: true,
            warmup_fraction: 0.3,
            audit_timing: false,
            time_skip: true,
            epoch_cycles: None,
            channel_par: false,
            tenancy: None,
        }
    }

    /// A fast preset for unit tests: 4 cores, small HBM, tight bound.
    pub fn quick(kind: PolicyKind) -> Self {
        let mut c = Self::scaled(kind);
        c.hierarchy = HierarchyConfig::scaled(4);
        c.policy.hbm = redcache_dram::DramConfig::wideio_scaled(4 << 20);
        c.policy.ddr = redcache_dram::DramConfig::ddr4_scaled(64 << 20);
        c.max_cycles = 400_000_000;
        c
    }

    /// Validates the composite configuration.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        self.policy.validate()?;
        if self.hierarchy.cores == 0 {
            return Err("need at least one core".into());
        }
        if self.max_cycles == 0 {
            return Err("max_cycles must be nonzero".into());
        }
        if !(0.0..0.95).contains(&self.warmup_fraction) {
            return Err("warmup_fraction must be in [0, 0.95)".into());
        }
        if self.epoch_cycles == Some(0) {
            return Err("epoch_cycles must be nonzero when set".into());
        }
        if let Some(sched) = &self.tenancy {
            sched.validate().map_err(|e| e.message().to_string())?;
        }
        Ok(())
    }

    /// Looks up a preset by its CLI/API name: `"table1"`, `"scaled"`,
    /// or `"quick"` (case-insensitive). The spelling shared by
    /// `redcache-sim` and the `redcache-serve` job API.
    pub fn preset(name: &str, kind: PolicyKind) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "table1" => Some(Self::table1(kind)),
            "scaled" => Some(Self::scaled(kind)),
            "quick" => Some(Self::quick(kind)),
            _ => None,
        }
    }

    /// Starts a validated builder seeded from the scaled preset for
    /// `kind` — the idiomatic way to assemble a non-preset
    /// configuration (see [`SimConfigBuilder`]).
    pub fn builder(kind: PolicyKind) -> SimConfigBuilder {
        Self::scaled(kind).to_builder()
    }

    /// Re-opens this configuration as a builder, e.g. to derive a
    /// variant from a preset.
    pub fn to_builder(self) -> SimConfigBuilder {
        SimConfigBuilder { cfg: self }
    }
}

/// Builder for [`SimConfig`] whose [`SimConfigBuilder::build`] runs the
/// full cross-field validation, so an inconsistent configuration is a
/// `Result::Err` at construction instead of a panic inside
/// [`crate::Simulator::new`].
///
/// ```
/// use redcache::{PolicyKind, SimConfig};
///
/// let cfg = SimConfig::builder(PolicyKind::Alloy)
///     .epoch_cycles(Some(100_000))
///     .build()
///     .unwrap();
/// assert_eq!(cfg.epoch_cycles, Some(100_000));
/// assert!(SimConfig::builder(PolicyKind::Alloy)
///     .epoch_cycles(Some(0))
///     .build()
///     .is_err());
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Replaces the controller policy + DRAM organisation.
    pub fn policy(mut self, policy: PolicyConfig) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Replaces the SRAM hierarchy geometry.
    pub fn hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.cfg.hierarchy = hierarchy;
        self
    }

    /// Replaces the core model parameters.
    pub fn core(mut self, core: CoreConfig) -> Self {
        self.cfg.core = core;
        self
    }

    /// Sets the hard cycle bound.
    pub fn max_cycles(mut self, max_cycles: Cycle) -> Self {
        self.cfg.max_cycles = max_cycles;
        self
    }

    /// Toggles the shadow-memory read check.
    pub fn check_shadow(mut self, on: bool) -> Self {
        self.cfg.check_shadow = on;
        self
    }

    /// Sets the warmup fraction (must stay in `[0, 0.95)`).
    pub fn warmup_fraction(mut self, fraction: f64) -> Self {
        self.cfg.warmup_fraction = fraction;
        self
    }

    /// Toggles the runtime DRAM timing audit.
    pub fn audit_timing(mut self, on: bool) -> Self {
        self.cfg.audit_timing = on;
        self
    }

    /// Toggles event-driven time advance.
    pub fn time_skip(mut self, on: bool) -> Self {
        self.cfg.time_skip = on;
        self
    }

    /// Sets the epoch-recorder stride (`None` disables recording).
    pub fn epoch_cycles(mut self, stride: Option<Cycle>) -> Self {
        self.cfg.epoch_cycles = stride;
        self
    }

    /// Toggles per-channel parallel stepping inside each DRAM system
    /// (DESIGN.md §3.11; bit-exact either way).
    pub fn channel_par(mut self, on: bool) -> Self {
        self.cfg.channel_par = on;
        self
    }

    /// Overrides the FBR replacement knobs (a pure policy knob: warm
    /// snapshots are shared across its values).
    pub fn fbr_override(mut self, fbr: Option<redcache_policies::FbrConfig>) -> Self {
        self.cfg.policy.fbr_override = fbr;
        self
    }

    /// Declares the trace as a multi-tenant weave under `sched`
    /// (DESIGN.md §3.15) and turns on per-tenant attribution. `None`
    /// is the single-tenant default.
    pub fn tenancy(mut self, sched: Option<TenantSchedule>) -> Self {
        self.cfg.tenancy = sched;
        self
    }

    /// Validates and returns the finished configuration.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency [`SimConfig::validate`] finds.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.cfg.validate().map_err(ConfigError::from)?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for kind in [
            PolicyKind::NoHbm,
            PolicyKind::Ideal,
            PolicyKind::Alloy,
            PolicyKind::Bear,
            PolicyKind::Fbr,
        ] {
            SimConfig::table1(kind).validate().unwrap();
            SimConfig::scaled(kind).validate().unwrap();
            SimConfig::quick(kind).validate().unwrap();
        }
    }

    #[test]
    fn preset_lookup_matches_constructors() {
        let k = PolicyKind::Alloy;
        assert_eq!(SimConfig::preset("quick", k), Some(SimConfig::quick(k)));
        assert_eq!(SimConfig::preset("Scaled", k), Some(SimConfig::scaled(k)));
        assert_eq!(SimConfig::preset("TABLE1", k), Some(SimConfig::table1(k)));
        assert_eq!(SimConfig::preset("nope", k), None);
    }

    #[test]
    fn builder_round_trips_and_validates() {
        let base = SimConfig::quick(PolicyKind::Bear);
        assert_eq!(base.to_builder().build().unwrap(), base);

        let cfg = SimConfig::builder(PolicyKind::Alloy)
            .max_cycles(123)
            .warmup_fraction(0.0)
            .time_skip(false)
            .epoch_cycles(Some(50_000))
            .build()
            .unwrap();
        assert_eq!(cfg.max_cycles, 123);
        assert!(!cfg.time_skip);
        assert_eq!(cfg.epoch_cycles, Some(50_000));

        let err = SimConfig::builder(PolicyKind::Alloy)
            .epoch_cycles(Some(0))
            .build()
            .unwrap_err();
        assert!(err.message().contains("epoch_cycles"), "{err}");
        assert!(SimConfig::builder(PolicyKind::Alloy)
            .warmup_fraction(0.99)
            .build()
            .is_err());
        assert!(SimConfig::builder(PolicyKind::Alloy)
            .max_cycles(0)
            .build()
            .is_err());
    }

    #[test]
    fn tenancy_validates_through_the_builder() {
        let ok = SimConfig::builder(PolicyKind::Alloy)
            .tenancy(Some(TenantSchedule::round_robin(2)))
            .build()
            .unwrap();
        assert_eq!(ok.tenancy.unwrap().tenants, 2);

        let mut bad = TenantSchedule::round_robin(2);
        bad.slots[0] = 0;
        assert!(SimConfig::builder(PolicyKind::Alloy)
            .tenancy(Some(bad))
            .build()
            .is_err());
    }

    #[test]
    fn scaled_preserves_capacity_ratios() {
        let c = SimConfig::scaled(PolicyKind::Alloy);
        let hbm = c.policy.hbm.topology.capacity_bytes();
        let l3 = c.hierarchy.l3.size_bytes as u64;
        // Table I: 2 GB / 8 MB = 256; scaled: 32 MB / 1 MB = 32 — the
        // HBM stays orders of magnitude bigger than the L3.
        assert!(hbm / l3 >= 16, "HBM/L3 ratio collapsed: {}", hbm / l3);
    }
}
