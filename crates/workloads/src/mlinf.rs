//! **MLI** — ML-inference working set, the third server-class scenario
//! of the engine (DESIGN.md §3.15).
//!
//! Models a model-serving tier: per request, a small embedding gather
//! from a hot table, then a layer-sequential pass — each layer streams
//! its weight matrix once (zero reuse *within* a request, perfect reuse
//! *across* requests) while ping-ponging between two small activation
//! buffers (extreme short-term reuse) and re-reading a tiny per-layer
//! parameter block (bias/scale — always hot). The resulting profile
//! mixes an L-type weight stream with an F-type activation set: a
//! policy must cache the activations and embeddings without burning
//! fill bandwidth on the weight stream it can never reuse in time.

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};
use rand::Rng;

/// Layers per inference pass.
const LAYERS: u64 = 8;
/// 8-byte weight words per layer, before shrink scaling.
const LAYER_WORDS_FULL: usize = 96 << 10;
/// 8-byte words per activation buffer.
const ACT_WORDS: u64 = 2 << 10;
/// Embedding table rows before shrink scaling (one line per row).
const EMBED_ROWS_FULL: usize = 32 << 10;
/// Rows gathered per request.
const GATHER: u64 = 16;

pub(crate) fn generate(cfg: &GenConfig) -> ThreadTraces {
    let layer_words = cfg.count(LAYER_WORDS_FULL) as u64;
    let embed_rows = cfg.count(EMBED_ROWS_FULL) as u64;
    let mut layout = Layout::new();
    let weights = layout.alloc(LAYERS * layer_words * 8);
    let embed = layout.alloc(embed_rows * 64);
    let params = layout.alloc(LAYERS * 256); // bias/scale per layer
    // Two activation buffers per thread (batch lanes are independent).
    let acts: Vec<_> = (0..cfg.threads as u64 * 2)
        .map(|_| layout.alloc(ACT_WORDS * 8))
        .collect();
    let mut b = TraceBuilder::new(cfg);

    for t in 0..cfg.threads {
        let mut rng = cfg.rng(0x4D4C_0000 + t as u64);
        let (mut a_in, mut a_out) = (acts[t * 2], acts[t * 2 + 1]);
        while b.has_budget(t) {
            // Embedding gather: hot-biased row picks (squared fold).
            for _ in 0..GATHER {
                let u = rng.gen_range(0u64..embed_rows * embed_rows);
                let row = (u as f64).sqrt() as u64 % embed_rows;
                b.load(t, elem(embed, row, 64), 2);
                b.store(t, elem(a_in, rng.gen_range(0u64..ACT_WORDS), 8), 1);
            }
            // Layer-sequential streaming.
            for l in 0..LAYERS {
                let wbase = elem(weights, l * layer_words, 8);
                b.load(t, elem(params, l * 32, 8), 2);
                b.load(t, elem(params, l * 32 + 8, 8), 1);
                // Stream the layer in line-sized strides, touching the
                // activations every few weight lines.
                let mut w = 0;
                while w < layer_words && b.has_budget(t) {
                    b.load(t, elem(wbase, w, 8), 1);
                    if w % 32 == 0 {
                        b.load(t, elem(a_in, (w / 32) % ACT_WORDS, 8), 1);
                        b.store(t, elem(a_out, (w / 32) % ACT_WORDS, 8), 1);
                    }
                    w += 8; // next cache line of weights
                }
                std::mem::swap(&mut a_in, &mut a_out);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;

    #[test]
    fn deterministic() {
        let cfg = GenConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn weights_stream_activations_reuse() {
        let cfg = GenConfig::tiny();
        let flat: Vec<_> = generate(&cfg).into_iter().flatten().collect();
        let s = TraceStats::from_trace(&flat);
        let reuse = s.accesses as f64 / s.footprint_lines as f64;
        // The blend sits between a pure stream (~1) and a resident hot
        // set: the weight stream caps it low, the activations and
        // params pull it well above 1.
        assert!(reuse > 1.2, "activation/param reuse missing: {reuse}");
        let stores = flat.iter().filter(|a| a.op.is_store()).count();
        let frac = stores as f64 / flat.len() as f64;
        assert!(frac > 0.01 && frac < 0.35, "store fraction {frac}");
    }
}
