//! **GRPH** — pointer-chasing traversal of a synthetic power-law graph,
//! the second server-class scenario of the engine (DESIGN.md §3.15).
//!
//! A CSR structure (offset array + edge array) is laid out over a
//! power-law degree sequence: node `i`'s degree falls off as
//! `(i+1)^-0.7`, so a small head of hub nodes owns a large share of the
//! edges. Threads run random walks: read the two bounding offsets, scan
//! a few edges, hop to a target biased toward the hubs, and
//! occasionally mark a visited bitmap. Dependent loads with almost no
//! spatial locality, but heavy *popularity* locality on the hubs — the
//! access pattern of graph serving / web-graph ranking tiers.

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};
use rand::Rng;

/// Nodes before shrink scaling.
const NODES_FULL: usize = 512 << 10;
/// Target average degree.
const AVG_DEGREE: u64 = 8;
/// Degree-sequence exponent.
const DEGREE_EXP: f64 = 0.7;
/// Edges scanned per visit (bounded: a ranking step, not full BFS).
const SCAN: u64 = 4;

/// SplitMix64-style mixer: the deterministic "edge array content" —
/// target of edge `e` — without materialising the array.
fn mix(seed: u64, e: u64) -> u64 {
    let mut z = seed ^ e.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(crate) fn generate(cfg: &GenConfig) -> ThreadTraces {
    let nodes = cfg.count(NODES_FULL) as u64;
    let edges_target = nodes * AVG_DEGREE;

    // Power-law degree sequence, scaled so the total lands near the
    // edge target. Hubs first: deg(i) ∝ (i+1)^-0.7, clamped to [1, 256].
    let norm: f64 = (0..nodes)
        .map(|i| 1.0 / ((i + 1) as f64).powf(DEGREE_EXP))
        .sum();
    let scale = edges_target as f64 / norm;
    let mut offsets: Vec<u64> = Vec::with_capacity(nodes as usize + 1);
    let mut total = 0u64;
    offsets.push(0);
    for i in 0..nodes {
        let deg = (scale / ((i + 1) as f64).powf(DEGREE_EXP)) as u64;
        total += deg.clamp(1, 256);
        offsets.push(total);
    }

    let mut layout = Layout::new();
    let off_arr = layout.alloc((nodes + 1) * 8);
    let edge_arr = layout.alloc(total * 4);
    let visited = layout.alloc(nodes.div_ceil(8));
    let mut b = TraceBuilder::new(cfg);
    let edge_seed: u64 = cfg.rng(0x6772).gen();

    for t in 0..cfg.threads {
        let mut rng = cfg.rng(0x6772_0000 + t as u64);
        let mut v: u64 = rng.gen_range(0u64..nodes);
        while b.has_budget(t) {
            // CSR bounds: offsets[v] and offsets[v+1] (usually the same
            // line — the cheap half of the chase).
            b.load(t, elem(off_arr, v, 8), 3);
            b.load(t, elem(off_arr, v + 1, 8), 1);
            let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
            let deg = hi - lo;
            if deg == 0 {
                v = rng.gen_range(0u64..nodes);
                continue;
            }
            // Scan a bounded window of the adjacency list.
            let scan = deg.min(SCAN);
            let first = if deg > scan {
                lo + rng.gen_range(0u64..deg - scan + 1)
            } else {
                lo
            };
            for e in first..first + scan {
                b.load(t, elem(edge_arr, e, 4), 1);
            }
            // Occasionally mark the node visited (frontier update).
            if rng.gen_range(0u32..16) == 0 {
                b.store(t, elem(visited, v / 8, 1), 1);
            }
            // Hop along one scanned edge. Targets are hub-biased: the
            // square fold of a uniform deviate lands on low (high-
            // degree) node ids more often — preferential attachment
            // without materialising 4 MB of edge values.
            let pick = first + rng.gen_range(0u64..scan);
            let u = mix(edge_seed, pick) % (nodes * nodes);
            v = num_integer_sqrt(u);
            // Periodic restart keeps walks from trapping in sinks.
            if rng.gen_range(0u32..64) == 0 {
                v = rng.gen_range(0u64..nodes);
            }
        }
    }
    b.build()
}

/// Integer square root (`f64::sqrt` is exact well past `2^52`, and node
/// counts stay far below that; the clamp guards the boundary anyway).
fn num_integer_sqrt(v: u64) -> u64 {
    let r = (v as f64).sqrt() as u64;
    r.saturating_sub(1) + ((r.saturating_sub(1) + 1).pow(2) <= v) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;

    #[test]
    fn deterministic() {
        let cfg = GenConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn walks_are_load_dominated_with_hub_reuse() {
        let cfg = GenConfig::tiny();
        let flat: Vec<_> = generate(&cfg).into_iter().flatten().collect();
        let stores = flat.iter().filter(|a| a.op.is_store()).count();
        assert!(
            (stores as f64) < 0.05 * flat.len() as f64,
            "traversal should be read-dominated"
        );
        let s = TraceStats::from_trace(&flat);
        let reuse = s.accesses as f64 / s.footprint_lines as f64;
        // Hub bias revisits the head of the CSR arrays.
        assert!(reuse > 1.5, "hub reuse too low: {reuse}");
    }

    #[test]
    fn sqrt_helper_is_exact_on_squares() {
        for v in [0u64, 1, 2, 3, 4, 8, 9, 15, 16, 1 << 40, (1 << 20) + 1] {
            let r = num_integer_sqrt(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "sqrt({v}) = {r}");
        }
    }
}
