//! Experiment harness for the RedCache reproduction: shared machinery
//! for the per-figure binaries (`fig2_*`, `fig3_reuse`, `fig9_exec_time`,
//! `fig10_hbm_energy`, `fig11_system_energy`, `table*`, `stat_*`,
//! `ablation_*`).
//!
//! Each binary builds a run matrix (workloads × architectures), executes
//! it in parallel across OS threads (every simulation is independent and
//! deterministic), prints the paper's rows/series as an aligned text
//! table, and persists machine-readable JSON under `results/`.

#![warn(missing_docs)]

pub mod pool;
pub mod report_io;

use redcache::{PolicyKind, RunReport, SimConfig, Simulator, WarmSnapshot};
use redcache_workloads::{trace_io, GenConfig, SharedTraces, Workload};
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;

/// Default generator configuration for experiments, overridable with the
/// `REDCACHE_BUDGET` (accesses per thread) and `REDCACHE_SHRINK`
/// environment variables for quicker passes.
pub fn experiment_gen_config() -> GenConfig {
    let mut g = GenConfig::scaled();
    if let Ok(v) = std::env::var("REDCACHE_BUDGET") {
        if let Ok(b) = v.parse() {
            g.budget_per_thread = b;
        }
    }
    if let Ok(v) = std::env::var("REDCACHE_SHRINK") {
        if let Ok(s) = v.parse() {
            g.shrink = s;
        }
    }
    g
}

/// One cell of a run matrix.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Workload to execute.
    pub workload: Workload,
    /// Architecture to simulate.
    pub policy: PolicyKind,
    /// Simulation configuration.
    pub cfg: SimConfig,
}

/// One simulation result plus the wall-clock seconds it took.
#[derive(Debug, Clone, Serialize)]
pub struct TimedRun {
    /// The simulation's report.
    pub report: RunReport,
    /// Wall-clock seconds spent simulating (trace generation excluded).
    pub wall_s: f64,
    /// Wall-clock seconds spent generating (or loading from the trace
    /// cache) this spec's workload traces. Traces are produced once per
    /// workload and shared across its specs, so every spec of the same
    /// workload reports the same figure — sum over *distinct* workloads
    /// for the matrix's total generation time.
    pub gen_s: f64,
    /// Wall-clock seconds spent warming this spec's shared snapshot.
    /// Like `gen_s`, the warmup runs once per warm group (distinct
    /// workload × warm-relevant configuration) and every spec of the
    /// group reports the same figure; `0.0` when forking is disabled.
    pub warm_s: f64,
}

/// Runs one simulation under `cfg` against already-generated traces,
/// labelling the report with `label`. Returns the report and the
/// simulation wall-clock seconds (trace generation excluded).
///
/// This is the single execution path shared by the run-matrix harness
/// and the `redcache-serve` daemon workers — anything that turns a
/// `(config, traces)` pair into a [`RunReport`] goes through here.
pub fn run_labelled(cfg: SimConfig, label: &str, traces: SharedTraces) -> (RunReport, f64) {
    let started = std::time::Instant::now();
    let mut report = Simulator::new(cfg).run(traces);
    let wall_s = started.elapsed().as_secs_f64();
    report.workload = Some(label.to_string());
    (report, wall_s)
}

/// Runs one [`RunSpec`] against already-generated traces; see
/// [`run_labelled`].
pub fn run_one(spec: &RunSpec, traces: SharedTraces) -> (RunReport, f64) {
    run_labelled(spec.cfg, spec.workload.info().label, traces)
}

/// Like [`run_labelled`], but resuming from a shared warm snapshot
/// instead of warming from scratch — the fork half of warm forking
/// (DESIGN.md §3.13). Bit-identical to [`run_labelled`] on the same
/// traces; only the warmup work is saved. The wall-clock figure covers
/// the resumed (measured) phase only.
pub fn run_labelled_resumed(
    cfg: SimConfig,
    label: &str,
    snapshot: &WarmSnapshot,
) -> (RunReport, f64) {
    let started = std::time::Instant::now();
    let mut report = Simulator::new(cfg).resume(snapshot);
    let wall_s = started.elapsed().as_secs_f64();
    report.workload = Some(label.to_string());
    (report, wall_s)
}

/// Executes `specs` in parallel (bounded by [`pool::max_workers`]) and
/// returns the reports in spec order.
///
/// # Panics
///
/// Panics if any simulation panics (its error is propagated).
pub fn run_matrix(specs: &[RunSpec], gen: &GenConfig) -> Vec<RunReport> {
    run_matrix_timed(specs, gen)
        .into_iter()
        .map(|t| t.report)
        .collect()
}

/// Like [`run_matrix`], additionally recording per-spec wall-clock.
///
/// Specs are grouped by workload first: each distinct workload's traces
/// are generated exactly **once** (in parallel across workloads, through
/// the optional `REDCACHE_TRACE_CACHE_DIR` disk cache) and handed to the
/// simulation workers as [`SharedTraces`] — a policy column over one
/// workload costs one generation, not one per policy.
///
/// The warmup phase is deduplicated the same way (DESIGN.md §3.13):
/// specs sharing a workload and a warm-relevant configuration
/// ([`Simulator::warm_key`]) fork one shared [`WarmSnapshot`] instead of
/// each re-warming — a policy column costs one warmup, not one each —
/// with bit-identical reports either way. Set `REDCACHE_NO_WARM_FORK=1`
/// to force per-spec scratch runs (A/B checks, wall-clock baselines).
///
/// Generation, warmup, and simulation all run on
/// [`pool::par_map_indexed`], capped at [`pool::max_workers`] threads
/// (logical CPUs, or the `REDCACHE_JOBS` override) — an arbitrarily
/// large matrix never oversubscribes the machine.
///
/// # Panics
///
/// Panics if any simulation panics (its error is propagated).
pub fn run_matrix_timed(specs: &[RunSpec], gen: &GenConfig) -> Vec<TimedRun> {
    let fork = std::env::var_os("REDCACHE_NO_WARM_FORK").is_none_or(|v| v != "1");
    run_matrix_timed_opts(specs, gen, fork)
}

/// [`run_matrix_timed`] with warm forking under caller control instead
/// of the environment's (`fork = false` runs every spec from scratch).
pub fn run_matrix_timed_opts(specs: &[RunSpec], gen: &GenConfig, fork: bool) -> Vec<TimedRun> {
    let n = specs.len();
    let workers = pool::max_workers();

    // Distinct workloads in first-appearance order (the matrix is tiny:
    // a linear scan beats hashing).
    let mut uniq: Vec<Workload> = Vec::new();
    for s in specs {
        if !uniq.contains(&s.workload) {
            uniq.push(s.workload);
        }
    }
    // One generation per distinct workload, in parallel but bounded.
    let generated: Vec<(SharedTraces, f64)> = pool::par_map_indexed(uniq.len(), workers, |i| {
        let started = std::time::Instant::now();
        let traces = trace_io::generate_cached(uniq[i], gen);
        let gen_s = started.elapsed().as_secs_f64();
        (SharedTraces::from(traces), gen_s)
    });
    let workload_of: Vec<usize> = specs
        .iter()
        .map(|s| {
            uniq.iter()
                .position(|w| *w == s.workload)
                .expect("workload was grouped above")
        })
        .collect();

    if !fork {
        return pool::par_map_indexed(n, workers, |i| {
            let (traces, gen_s) = &generated[workload_of[i]];
            let (report, wall_s) = run_one(&specs[i], traces.clone());
            TimedRun {
                report,
                wall_s,
                gen_s: *gen_s,
                warm_s: 0.0,
            }
        });
    }

    // Warm groups: one per distinct (workload, warm key) — normally one
    // per workload, since the warm key excludes everything
    // policy-specific, but mixed-geometry matrices split correctly.
    // Each group is warmed once (in parallel, bounded) and its snapshot
    // forked into every member.
    let keys: Vec<u64> = specs
        .iter()
        .map(|s| Simulator::new(s.cfg).warm_key())
        .collect();
    let mut groups: Vec<(usize, u64, usize)> = Vec::new(); // (workload idx, warm key, exemplar spec)
    let mut group_of: Vec<usize> = Vec::with_capacity(n);
    for i in 0..n {
        let probe = (workload_of[i], keys[i]);
        match groups.iter().position(|&(wi, k, _)| (wi, k) == probe) {
            Some(g) => group_of.push(g),
            None => {
                groups.push((workload_of[i], keys[i], i));
                group_of.push(groups.len() - 1);
            }
        }
    }
    let warmed: Vec<(Arc<WarmSnapshot>, f64)> = pool::par_map_indexed(groups.len(), workers, |g| {
        let (wi, _, si) = groups[g];
        let started = std::time::Instant::now();
        let snap = Simulator::new(specs[si].cfg).warm(generated[wi].0.clone());
        (snap, started.elapsed().as_secs_f64())
    });

    pool::par_map_indexed(n, workers, |i| {
        let spec = specs[i];
        let (_, gen_s) = &generated[workload_of[i]];
        let (snapshot, warm_s) = &warmed[group_of[i]];
        let (report, wall_s) = run_labelled_resumed(spec.cfg, spec.workload.info().label, snapshot);
        TimedRun {
            report,
            wall_s,
            gen_s: *gen_s,
            warm_s: *warm_s,
        }
    })
}

/// Runs every workload under every policy; returns
/// `reports[workload_idx][policy_idx]`.
pub fn run_suite(
    workloads: &[Workload],
    policies: &[PolicyKind],
    cfg_of: impl Fn(PolicyKind) -> SimConfig,
    gen: &GenConfig,
) -> Vec<Vec<RunReport>> {
    let mut specs = Vec::new();
    for &w in workloads {
        for &p in policies {
            specs.push(RunSpec {
                workload: w,
                policy: p,
                cfg: cfg_of(p),
            });
        }
    }
    let flat = run_matrix(&specs, gen);
    flat.chunks(policies.len()).map(|c| c.to_vec()).collect()
}

/// Asserts that no run served stale data.
pub fn assert_clean(reports: &[RunReport]) {
    for r in reports {
        assert_eq!(
            r.shadow_violations, 0,
            "{} on {:?} served stale data",
            r.policy, r.workload
        );
    }
}

/// Prints an aligned table: first column `row_label`, one column per
/// entry of `cols`, rows from `rows`.
pub fn print_table(title: &str, row_label: &str, cols: &[String], rows: &[(String, Vec<f64>)]) {
    println!("\n== {title} ==");
    let w0 = rows
        .iter()
        .map(|(l, _)| l.len())
        .chain([row_label.len()])
        .max()
        .unwrap_or(8)
        + 2;
    let wc = cols.iter().map(|c| c.len().max(7)).collect::<Vec<_>>();
    print!("{row_label:<w0$}");
    for (c, w) in cols.iter().zip(&wc) {
        print!("{c:>width$}", width = w + 2);
    }
    println!();
    for (label, vals) in rows {
        print!("{label:<w0$}");
        for (v, w) in vals.iter().zip(&wc) {
            print!("{v:>width$.3}", width = w + 2);
        }
        println!();
    }
}

/// Persists any serializable result as pretty JSON under `results/`,
/// wrapped in the versioned [`report_io::Saved`] envelope.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    report_io::write_json(name, value);
}

/// The cached Fig. 9/10/11 evaluation matrix: the workload registry's
/// figure rows (currently the paper's 11 Table II applications — the
/// server-class scenarios are kept out so the figure means stay
/// comparable to the paper's) under the registry's figure
/// architectures (the paper's 7 plus FBR; No-HBM and IDEAL provide
/// context elsewhere), shared by the figure binaries so the expensive
/// matrix runs once.
///
/// Reports are cached in `results/eval_matrix.json`; delete the file or
/// set `REDCACHE_RERUN=1` to force re-simulation.
pub fn eval_matrix() -> (Vec<Workload>, Vec<PolicyKind>, Vec<Vec<RunReport>>) {
    let workloads = redcache_workloads::registry::figure_workloads();
    let policies = figure_policies();
    let cache = Path::new("results/eval_matrix.json");
    if std::env::var("REDCACHE_RERUN").is_err() {
        if let Some(m) = report_io::read_json::<Vec<Vec<RunReport>>>(cache) {
            if m.len() == workloads.len() && m.iter().all(|row| row.len() == policies.len()) {
                eprintln!("(using cached {})", cache.display());
                return (workloads, policies, m);
            }
        }
    }
    let gen = experiment_gen_config();
    eprintln!(
        "running {} simulations ({} workloads x {} architectures)…",
        workloads.len() * policies.len(),
        workloads.len(),
        policies.len()
    );
    let mut specs = Vec::new();
    for &w in &workloads {
        for &p in &policies {
            specs.push(RunSpec {
                workload: w,
                policy: p,
                cfg: SimConfig::scaled(p),
            });
        }
    }
    let timed = run_matrix_timed(&specs, &gen);
    let timings: Vec<(String, String, f64)> = specs
        .iter()
        .zip(&timed)
        .map(|(s, t)| {
            (
                s.workload.info().label.to_string(),
                s.policy.to_string(),
                t.wall_s,
            )
        })
        .collect();
    save_json("eval_matrix_timing", &timings);
    let flat: Vec<RunReport> = timed.into_iter().map(|t| t.report).collect();
    let reports: Vec<Vec<RunReport>> = flat.chunks(policies.len()).map(|c| c.to_vec()).collect();
    for row in &reports {
        assert_clean(row);
    }
    save_json("eval_matrix", &reports);
    (workloads, policies, reports)
}

/// The figure-9/10/11 architecture columns: the paper's legend order,
/// extended by FBR. Sourced from the policy registry
/// (`redcache_policies::registry`) so a policy added there lands in
/// every figure and table without touching this crate.
pub fn figure_policies() -> Vec<PolicyKind> {
    redcache_policies::registry::figure_kinds()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_runs_in_parallel_and_in_order() {
        let gen = GenConfig::tiny();
        let specs = vec![
            RunSpec {
                workload: Workload::Lreg,
                policy: PolicyKind::NoHbm,
                cfg: SimConfig::quick(PolicyKind::NoHbm),
            },
            RunSpec {
                workload: Workload::Hist,
                policy: PolicyKind::Alloy,
                cfg: SimConfig::quick(PolicyKind::Alloy),
            },
        ];
        let reports = run_matrix(&specs, &gen);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].workload.as_deref(), Some("LREG"));
        assert_eq!(reports[1].workload.as_deref(), Some("HIST"));
        assert_clean(&reports);
    }

    #[test]
    fn figure_policy_list_matches_paper_legend() {
        let names: Vec<String> = figure_policies().iter().map(|p| p.to_string()).collect();
        assert_eq!(
            names,
            [
                "Alloy",
                "Bear",
                "Red-Alpha",
                "Red-Gamma",
                "Red-Basic",
                "Red-InSitu",
                "RedCache",
                "FBR"
            ]
        );
    }
}
