//! **RedCache** — a full-system reproduction of *"RedCache: Reduced DRAM
//! Caching"* (Behnam & Bojnordi, DAC 2020).
//!
//! This crate assembles the whole evaluated system and is the public
//! API of the workspace:
//!
//! * a 16-core out-of-order front end ([`redcache_cpu`]) running the
//!   eleven Table II workloads ([`redcache_workloads`]),
//! * the Table I three-level SRAM hierarchy ([`redcache_cache`]),
//! * cycle-level WideIO/HBM and DDR4 DRAM ([`redcache_dram`]),
//! * the DRAM-cache controllers under study ([`redcache_policies`]):
//!   No-HBM, IDEAL, Alloy, BEAR and the RedCache α/γ/RCU family,
//! * event-based energy models ([`redcache_energy`]).
//!
//! # Quickstart
//!
//! ```
//! use redcache::{PolicyKind, SimConfig, Simulator};
//! use redcache_workloads::{GenConfig, Workload};
//!
//! let cfg = SimConfig::quick(PolicyKind::Alloy);
//! let traces = Workload::Hist.generate(&GenConfig::tiny());
//! let report = Simulator::new(cfg).run(traces);
//! assert!(report.cycles > 0);
//! assert_eq!(report.shadow_violations, 0); // no stale data, ever
//! ```
//!
//! Each figure/table of the paper has a regenerating binary in the
//! `redcache-bench` crate; see `DESIGN.md` §4 for the experiment index.

#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod profile;
pub mod sim;

mod checker;

pub use checker::ShadowMemory;
pub use config::SimConfig;
pub use metrics::RunReport;
pub use profile::{last_access_writeback_fraction, MemLevelStream, ReuseProfile};
pub use sim::Simulator;

// The vocabulary types users need, re-exported at the root.
pub use redcache_policies::{PolicyConfig, PolicyKind, RedConfig, RedVariant};
pub use redcache_types::Cycle;
