//! Golden equivalence test for the event-driven time advance.
//!
//! The main loop's skip (DESIGN.md §3.7) claims to be *exact*: jumping
//! from the current cycle to the next event must leave every observable
//! quantity — cycle counts, per-level cache statistics, DRAM command
//! and energy counters, slot accounting, shadow checks — bit-identical
//! to the cycle-by-cycle walk. This suite pins that claim by running
//! the full evaluation matrix both ways and comparing whole
//! [`redcache::RunReport`]s with `==`.

use redcache::{PolicyKind, RedVariant, RunReport, SimConfig, Simulator};
use redcache_workloads::{GenConfig, Workload};

fn run(kind: PolicyKind, w: Workload, gen: &GenConfig, time_skip: bool) -> RunReport {
    let cfg = SimConfig::quick(kind)
        .to_builder()
        .time_skip(time_skip)
        .build()
        .expect("preset-derived config validates");
    Simulator::new(cfg).run(w.generate(gen))
}

fn figure_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Alloy,
        PolicyKind::Bear,
        PolicyKind::Red(RedVariant::Alpha),
        PolicyKind::Red(RedVariant::Gamma),
        PolicyKind::Red(RedVariant::Basic),
        PolicyKind::Red(RedVariant::InSitu),
        PolicyKind::Red(RedVariant::Full),
        PolicyKind::Fbr,
    ]
}

#[test]
fn skip_is_exact_across_the_evaluation_matrix() {
    // All 14 suite workloads × the figure architectures, each run twice.
    let gen = GenConfig::tiny();
    for w in Workload::ALL {
        for kind in figure_policies() {
            let fast = run(kind, w, &gen, true);
            let slow = run(kind, w, &gen, false);
            assert_eq!(
                fast, slow,
                "{kind} on {w}: event-driven advance diverged from the cycle-accurate walk"
            );
        }
    }
}

#[test]
fn skip_is_exact_for_baseline_topologies() {
    // No-HBM and IDEAL exercise the single-sided and always-hit
    // controller horizons.
    let gen = GenConfig::tiny();
    for kind in [PolicyKind::NoHbm, PolicyKind::Ideal] {
        for w in [Workload::Is, Workload::Hist, Workload::Ocn] {
            let fast = run(kind, w, &gen, true);
            let slow = run(kind, w, &gen, false);
            assert_eq!(fast, slow, "{kind} on {w}");
        }
    }
}

#[test]
fn skip_is_exact_with_timing_audit_attached() {
    // The auditor observes every issued command; identical audit
    // payloads mean the skipped walk issued the same command stream at
    // the same cycles.
    let gen = GenConfig::tiny();
    for kind in [PolicyKind::Alloy, PolicyKind::Red(RedVariant::Full)] {
        let w = Workload::Is;
        let mk = |skip: bool| {
            let cfg = SimConfig::quick(kind)
                .to_builder()
                .time_skip(skip)
                .audit_timing(true)
                .build()
                .expect("preset-derived config validates");
            Simulator::new(cfg).run(w.generate(&gen))
        };
        let fast = mk(true);
        let slow = mk(false);
        assert_eq!(fast, slow, "{kind} with audit");
        let audit = fast.ddr_audit.as_ref().expect("audit attached");
        assert!(audit.clean(), "timing violations under skip");
        assert!(audit.cmds_audited > 0);
    }
}

#[test]
fn skip_is_exact_with_epoch_recording_enabled() {
    // Epoch recording must not perturb the advance in either mode: the
    // skip is clamped to the next epoch boundary (a no-op by the
    // `next_event` lower-bound contract), and boundaries jumped by the
    // shared compute fast-forward close late as zero-delta epochs in
    // both walks. Whole reports — *including* the timeseries — must be
    // bit-identical.
    let gen = GenConfig::tiny();
    for kind in [
        PolicyKind::Alloy,
        PolicyKind::Red(RedVariant::Full),
        PolicyKind::NoHbm,
    ] {
        for w in [Workload::Ft, Workload::Is, Workload::Hist] {
            let mk = |skip: bool| {
                let cfg = SimConfig::quick(kind)
                    .to_builder()
                    .time_skip(skip)
                    .epoch_cycles(Some(25_000))
                    .build()
                    .expect("preset-derived config validates");
                Simulator::new(cfg).run(w.generate(&gen))
            };
            let fast = mk(true);
            let slow = mk(false);
            assert_eq!(
                fast, slow,
                "{kind} on {w}: recording-enabled runs diverged between modes"
            );
            let ts = fast.timeseries.as_ref().expect("recording was on");
            assert!(!ts.epochs.is_empty());
        }
    }
}

#[test]
fn no_skip_env_var_disables_skipping() {
    // The env var is read once per run; we can't mutate the environment
    // safely in a threaded test harness, so check the config switch the
    // variable maps onto: time_skip=false is exactly the
    // REDCACHE_NO_SKIP=1 code path.
    let gen = GenConfig::tiny();
    let slow = run(PolicyKind::Alloy, Workload::Lreg, &gen, false);
    let fast = run(PolicyKind::Alloy, Workload::Lreg, &gen, true);
    assert_eq!(fast, slow);
}
