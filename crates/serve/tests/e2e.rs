//! End-to-end tests for the serving daemon, over real sockets.
//!
//! These pin the PR's acceptance criteria:
//! (a) two concurrent identical submissions → one underlying
//!     simulation and bit-identical report envelopes,
//! (b) submissions beyond queue capacity → `503` without crashing,
//! (c) `SIGTERM` drains running jobs and persists results to the spool
//!     before exit,
//! (d) `/metrics` counters reconcile with the jobs actually run.
//!
//! The shutdown flag is process-global, so every test serializes on
//! one mutex and resets the flag around itself.

use redcache_serve::api::JobStatus;
use redcache_serve::{
    signals, Client, JobRequest, JobView, ServeOptions, Server, Submitted, SweepRequest, SweepView,
};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static GUARD: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    signals::reset();
    g
}

/// A tiny, fast job; `seed` varies the cache key.
fn tiny_job(seed: u64, hold_ms: u64) -> JobRequest {
    JobRequest {
        workload: "is".into(),
        preset: Some("quick".into()),
        threads: Some(2),
        shrink: Some(8),
        budget: Some(500),
        seed: Some(seed),
        hold_ms: Some(hold_ms),
        ..JobRequest::default()
    }
}

struct Harness {
    client: Client,
    daemon: std::sync::Arc<redcache_serve::Daemon>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(workers: usize, queue_capacity: usize, spool: Option<std::path::PathBuf>) -> Harness {
    signals::install();
    let server = Server::bind(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity,
        spool,
        ..ServeOptions::default()
    })
    .expect("bind ephemeral port");
    let client = Client::new(server.local_addr().to_string());
    let daemon = server.daemon();
    let thread = std::thread::spawn(move || server.run());
    Harness {
        client,
        daemon,
        thread,
    }
}

fn submit_ok(client: &Client, job: &JobRequest) -> JobView {
    let res = client.submit(job).expect("submit I/O");
    assert_eq!(res.status, 202, "unexpected response: {}", res.text());
    res.json().expect("job view")
}

fn wait_for_running(client: &Client, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let view: JobView = client.job(id).unwrap().json().expect("job view");
        if view.status == JobStatus::Running {
            return;
        }
        assert!(
            !view.status.is_terminal(),
            "job {id} finished before it was observed running"
        );
        assert!(Instant::now() < deadline, "job {id} never started running");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Extracts one un-labelled series value from Prometheus text.
fn metric(text: &str, name: &str) -> f64 {
    let prefix = format!("redcache_serve_{name} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{text}"))
        .trim()
        .parse()
        .expect("metric value parses")
}

fn assert_metrics_reconcile(text: &str) {
    let submitted = metric(text, "jobs_submitted_total");
    let completed = metric(text, "jobs_completed_total");
    let failed = metric(text, "jobs_failed_total");
    let canceled = metric(text, "jobs_canceled_total");
    let sims = metric(text, "sims_total");
    assert_eq!(
        submitted,
        completed + failed + canceled,
        "job accounting does not reconcile:\n{text}"
    );
    assert!(
        sims <= completed,
        "more simulations than completions:\n{text}"
    );
    assert_eq!(metric(text, "queue_depth"), 0.0);
    assert_eq!(metric(text, "running"), 0.0);
}

#[test]
fn concurrent_identical_submissions_share_one_simulation() {
    let _g = serial();
    let h = start(1, 8, None);

    // The hold keeps the leader in flight while the duplicate arrives.
    let job = tiny_job(1, 300);
    let a = submit_ok(&h.client, &job);
    let b = submit_ok(&h.client, &job);
    assert!(!a.coalesced);
    assert!(b.coalesced, "identical in-flight submission must coalesce");
    assert_eq!(a.key, b.key);

    let done_a = h.client.wait(a.id, Duration::from_secs(30)).unwrap();
    let done_b = h.client.wait(b.id, Duration::from_secs(30)).unwrap();
    assert_eq!(done_a.status, JobStatus::Completed);
    assert_eq!(done_b.status, JobStatus::Completed);

    // (a) bit-identical envelopes from one underlying run.
    let rep_a = h.client.report(a.id).unwrap();
    let rep_b = h.client.report(b.id).unwrap();
    assert_eq!(rep_a.status, 200);
    assert_eq!(
        rep_a.body, rep_b.body,
        "coalesced jobs must serve bit-identical report envelopes"
    );

    // A later duplicate is a pure cache hit: completed at submission.
    let c = submit_ok(&h.client, &job);
    assert!(c.cached);
    assert_eq!(c.status, JobStatus::Completed);
    assert_eq!(h.client.report(c.id).unwrap().body, rep_a.body);

    // (d) the counters agree with what actually happened.
    let text = h.client.metrics().unwrap().text();
    assert_eq!(metric(&text, "sims_total"), 1.0);
    assert_eq!(metric(&text, "jobs_submitted_total"), 3.0);
    assert_eq!(metric(&text, "coalesced_total"), 1.0);
    assert_eq!(metric(&text, "cache_hits_total"), 1.0);
    assert_metrics_reconcile(&text);

    let res = h.client.shutdown().unwrap();
    assert_eq!(res.status, 202);
    h.thread.join().unwrap().unwrap();
    signals::reset();
}

#[test]
fn overload_gets_503_with_retry_after_and_no_crash() {
    let _g = serial();
    let h = start(1, 1, None);

    // Occupy the single worker...
    let blocker = submit_ok(&h.client, &tiny_job(100, 2_000));
    wait_for_running(&h.client, blocker.id);
    // ...and the single queue slot.
    let queued = submit_ok(&h.client, &tiny_job(101, 0));

    // (b) everything further is refused politely.
    for seed in 102..105 {
        let res = h.client.submit(&tiny_job(seed, 0)).unwrap();
        assert_eq!(res.status, 503, "expected backpressure: {}", res.text());
        let retry: u32 = res
            .header("retry-after")
            .expect("503 must carry retry-after")
            .parse()
            .expect("retry-after is seconds");
        assert!(retry >= 1);
    }

    // The daemon keeps serving: status, health, metrics all live.
    assert_eq!(h.client.healthz().unwrap().status, 200);
    assert_eq!(h.client.job(blocker.id).unwrap().status, 200);
    assert_eq!(h.client.job(9999).unwrap().status, 404);

    // Accepted work still completes after the burst.
    assert_eq!(
        h.client
            .wait(blocker.id, Duration::from_secs(30))
            .unwrap()
            .status,
        JobStatus::Completed
    );
    assert_eq!(
        h.client
            .wait(queued.id, Duration::from_secs(30))
            .unwrap()
            .status,
        JobStatus::Completed
    );

    let text = h.client.metrics().unwrap().text();
    assert_eq!(metric(&text, "jobs_rejected_total"), 3.0);
    assert_eq!(metric(&text, "jobs_submitted_total"), 2.0);
    assert_eq!(metric(&text, "sims_total"), 2.0);
    assert_metrics_reconcile(&text);

    h.client.shutdown().unwrap();
    h.thread.join().unwrap().unwrap();
    signals::reset();
}

#[test]
fn sigterm_drains_running_work_and_persists_results() {
    let _g = serial();
    let spool = std::env::temp_dir().join(format!("redcache_serve_e2e_{:x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    std::fs::create_dir_all(&spool).unwrap();

    let h = start(1, 8, Some(spool.clone()));
    let view = submit_ok(&h.client, &tiny_job(200, 500));
    wait_for_running(&h.client, view.id);

    // (c) a real SIGTERM through the installed handler.
    signals::raise_sigterm();
    h.thread.join().unwrap().unwrap();
    signals::reset();

    // The in-flight job was drained to completion, not dropped...
    let final_view = h.daemon.job_view(view.id).expect("job survived drain");
    assert_eq!(final_view.status, JobStatus::Completed);
    assert!(h.daemon.job_report(view.id).is_some());

    // ...its result was spooled before exit...
    let spooled = spool.join(format!("report-{}.json", view.key));
    assert!(
        spooled.is_file(),
        "drained result was not persisted to {}",
        spooled.display()
    );
    let persisted: redcache::RunReport =
        redcache_bench::report_io::try_read_json(&spooled).expect("spooled report parses");
    assert_eq!(persisted, *h.daemon.job_report(view.id).unwrap());

    // ...and the drained daemon refuses new work.
    assert!(h.daemon.is_draining());
    let resolved = redcache_serve::api::resolve(&tiny_job(201, 0)).unwrap();
    assert!(matches!(h.daemon.submit(resolved), Submitted::Busy { .. }));

    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn sweep_fans_out_dedupes_and_rolls_up_over_http() {
    let _g = serial();
    let h = start(2, 16, None);

    // A 3-policy × 3-α grid over one tiny workload. The α axis only
    // exists for the red policies: the three alloy cells are identical
    // by construction, so single-flight dedupe must collapse them —
    // 9 cells, 7 distinct configurations.
    let sweep = SweepRequest {
        base: tiny_job(42, 0),
        alphas: vec![1, 2, 4],
        gammas: vec![],
        policies: vec!["redcache".into(), "red-alpha".into(), "alloy".into()],
    };
    let res = h.client.submit_sweep(&sweep).unwrap();
    assert_eq!(res.status, 202, "unexpected response: {}", res.text());
    let view: SweepView = res.json().expect("sweep view");
    assert_eq!(view.total, 9);
    assert!(view.deduped >= 2, "duplicate baseline cells must coalesce");

    let done = h.client.wait_sweep(view.id, Duration::from_secs(60)).unwrap();
    assert!(done.done);
    assert_eq!(done.completed, 9);
    assert_eq!(done.failed, 0);
    assert_eq!(done.jobs.len(), 9);

    // `GET /jobs/{id}` on the sweep id falls through to the roll-up.
    let via_jobs = h.client.job(view.id).unwrap();
    assert_eq!(via_jobs.status, 200);
    let alias: SweepView = via_jobs.json().expect("roll-up via /jobs");
    assert_eq!(alias.total, 9);

    // Dedupe is pinned by the daemon's own sim counter: 7 distinct
    // cells → at most 7 simulations (fewer if identicals coalesced
    // while in flight), and the sweep counters account for all 9.
    let text = h.client.metrics().unwrap().text();
    assert_eq!(metric(&text, "sweep_cells_total"), 9.0);
    assert!(
        metric(&text, "sims_total") <= 7.0,
        "identical sweep cells were simulated separately:\n{text}"
    );
    assert!(metric(&text, "sweep_cache_hits_total") >= 2.0);
    assert_metrics_reconcile(&text);

    // The identical alloy cells serve bit-identical report envelopes.
    let alloy: Vec<&JobView> = done.jobs.iter().filter(|j| j.policy == "Alloy").collect();
    assert_eq!(alloy.len(), 3);
    let first = h.client.report(alloy[0].id).unwrap();
    assert_eq!(first.status, 200);
    for j in &alloy[1..] {
        assert_eq!(h.client.report(j.id).unwrap().body, first.body);
    }

    // Resubmitting the identical grid costs zero new simulations.
    let sims_before = metric(&text, "sims_total");
    let res = h.client.submit_sweep(&sweep).unwrap();
    assert_eq!(res.status, 202);
    let again: SweepView = res.json().expect("sweep view");
    assert!(again.done, "a fully cached sweep settles at submission");
    assert_eq!(again.deduped, 9);
    let text = h.client.metrics().unwrap().text();
    assert_eq!(metric(&text, "sims_total"), sims_before);

    h.client.shutdown().unwrap();
    h.thread.join().unwrap().unwrap();
    signals::reset();
}

#[test]
fn oversized_or_overflowing_sweeps_are_refused() {
    let _g = serial();
    let h = start(1, 1, None);

    // Over the cell cap: a 400, not a half-submitted grid.
    let huge = SweepRequest {
        base: tiny_job(50, 0),
        alphas: (1..=32).collect(),
        gammas: (1..=32).collect(),
        policies: vec![],
    };
    assert_eq!(h.client.submit_sweep(&huge).unwrap().status, 400);

    // A bad cell is named precisely.
    let bad = SweepRequest {
        base: tiny_job(51, 0),
        alphas: vec![1],
        gammas: vec![],
        policies: vec!["redcache".into(), "alchemy".into()],
    };
    let res = h.client.submit_sweep(&bad).unwrap();
    assert_eq!(res.status, 400);
    assert!(res.text().contains("sweep cell 1"), "got: {}", res.text());

    // Backpressure: occupy the single worker and single queue slot,
    // then a 3×3 grid of distinct cells must hit 503 + Retry-After.
    let blocker = submit_ok(&h.client, &tiny_job(52, 2_000));
    wait_for_running(&h.client, blocker.id);
    submit_ok(&h.client, &tiny_job(53, 0));
    let grid = SweepRequest {
        base: tiny_job(54, 0),
        alphas: vec![1, 2, 4],
        gammas: vec![8, 16, 32],
        policies: vec![],
    };
    let res = h.client.submit_sweep(&grid).unwrap();
    assert_eq!(res.status, 503, "expected backpressure: {}", res.text());
    let retry: u32 = res
        .header("retry-after")
        .expect("503 must carry retry-after")
        .parse()
        .expect("retry-after is seconds");
    assert!(retry >= 1);
    // No roll-up record was created for the refused sweep; the daemon
    // keeps serving.
    assert_eq!(h.client.healthz().unwrap().status, 200);

    // Everything accepted still completes and the books balance.
    h.client.wait(blocker.id, Duration::from_secs(30)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let text = h.client.metrics().unwrap().text();
        if metric(&text, "queue_depth") == 0.0 && metric(&text, "running") == 0.0 {
            assert_metrics_reconcile(&text);
            break;
        }
        assert!(Instant::now() < deadline, "queue never drained");
        std::thread::sleep(Duration::from_millis(10));
    }

    h.client.shutdown().unwrap();
    h.thread.join().unwrap().unwrap();
    signals::reset();
}

#[test]
fn bad_requests_are_rejected_cleanly() {
    let _g = serial();
    let h = start(1, 4, None);

    let garbage = h
        .client
        .request("POST", "/jobs", Some(b"{not json"))
        .unwrap();
    assert_eq!(garbage.status, 400);
    let unknown = h
        .client
        .submit(&JobRequest {
            workload: "quicksort".into(),
            ..JobRequest::default()
        })
        .unwrap();
    assert_eq!(unknown.status, 400);
    assert_eq!(h.client.request("GET", "/nope", None).unwrap().status, 404);
    assert_eq!(h.client.request("PUT", "/jobs", None).unwrap().status, 405);
    assert_eq!(h.client.report(12345).unwrap().status, 404);

    // Nothing above became a job.
    let text = h.client.metrics().unwrap().text();
    assert_eq!(metric(&text, "jobs_submitted_total"), 0.0);

    h.client.shutdown().unwrap();
    h.thread.join().unwrap().unwrap();
    signals::reset();
}
