//! Event and bandwidth statistics for one DRAM system.

use redcache_types::Cycle;
use serde::{Deserialize, Serialize};

/// Raw DRAM command-event counts, the inputs to the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramEnergyEvents {
    /// Row activations.
    pub acts: u64,
    /// Precharges (explicit; refresh-forced closes are counted too).
    pub pres: u64,
    /// Read bursts (one tBL data transfer each).
    pub rd_bursts: u64,
    /// Write bursts.
    pub wr_bursts: u64,
    /// Per-rank refresh operations.
    pub refreshes: u64,
}

impl DramEnergyEvents {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: &DramEnergyEvents) {
        self.acts += other.acts;
        self.pres += other.pres;
        self.rd_bursts += other.rd_bursts;
        self.wr_bursts += other.wr_bursts;
        self.refreshes += other.refreshes;
    }
}

/// Aggregate statistics for one DRAM system over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Energy-relevant event counts.
    pub energy: DramEnergyEvents,
    /// Bytes moved from DRAM to the controller.
    pub bytes_read: u64,
    /// Bytes moved from the controller to DRAM.
    pub bytes_written: u64,
    /// Cycles during which any channel's data bus carried data
    /// (summed over channels — the paper's "aggregate bandwidth").
    pub bus_busy_cycles: u64,
    /// Transactions completed.
    pub txns_completed: u64,
    /// Sum of enqueue-to-data-completion latencies.
    pub latency_sum: Cycle,
    /// Transactions enqueued.
    pub txns_enqueued: u64,
    /// Samples of "all channel queues empty" taken per command slot.
    pub empty_slot_samples: u64,
    /// Total command-slot samples.
    pub slot_samples: u64,
    /// Column (RD/WR) commands issued.
    pub col_cmds: u64,
    /// Demand activates (each one is a row miss for some transaction).
    pub demand_acts: u64,
    /// Timing-audit violations observed so far. Always 0 when the
    /// runtime audit is disabled; see [`crate::TimingAuditor`] and
    /// [`crate::AuditStats`] for the full per-rule breakdown.
    #[serde(default)]
    pub audit_violations: u64,
    /// Sum over command slots of the scheduler-window occupancy
    /// (`min(queue length, window)`, summed over channels). Together
    /// with `slot_samples` this gives the mean number of transactions
    /// the scheduler kernel had to consider per slot. Skipped slots are
    /// back-filled by [`crate::DramSystem::sync_to`] with the frozen
    /// queue state, so the value is identical in event-driven and
    /// cycle-accurate walks.
    #[serde(default)]
    pub window_occupancy_sum: u64,
}

impl DramStats {
    /// Total bytes moved in either direction.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Mean transaction latency in cycles, or 0.0 when nothing completed.
    pub fn mean_latency(&self) -> f64 {
        if self.txns_completed == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.txns_completed as f64
        }
    }

    /// Mean scheduler-window occupancy per command slot (transactions
    /// the kernel had to consider, summed over channels).
    pub fn mean_window_occupancy(&self) -> f64 {
        if self.slot_samples == 0 {
            0.0
        } else {
            self.window_occupancy_sum as f64 / self.slot_samples as f64
        }
    }

    /// Fraction of command slots at which every queue was empty.
    pub fn empty_queue_fraction(&self) -> f64 {
        if self.slot_samples == 0 {
            0.0
        } else {
            self.empty_slot_samples as f64 / self.slot_samples as f64
        }
    }

    /// Row-buffer hit rate: the fraction of column commands that did not
    /// require a fresh activate.
    pub fn row_hit_rate(&self) -> f64 {
        if self.col_cmds == 0 {
            0.0
        } else {
            1.0 - (self.demand_acts.min(self.col_cmds) as f64 / self.col_cmds as f64)
        }
    }

    /// Data-bus utilisation over `channels` channels and `cycles` time.
    pub fn bus_utilization(&self, channels: usize, cycles: u64) -> f64 {
        if cycles == 0 || channels == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / (channels as u64 * cycles) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_accumulate() {
        let mut a = DramEnergyEvents {
            acts: 1,
            pres: 2,
            rd_bursts: 3,
            wr_bursts: 4,
            refreshes: 5,
        };
        let b = a;
        a.add(&b);
        assert_eq!(a.acts, 2);
        assert_eq!(a.refreshes, 10);
    }

    #[test]
    fn mean_latency_handles_empty() {
        let mut s = DramStats::default();
        assert_eq!(s.mean_latency(), 0.0);
        s.txns_completed = 2;
        s.latency_sum = 100;
        assert_eq!(s.mean_latency(), 50.0);
    }

    #[test]
    fn byte_totals_sum_directions() {
        let s = DramStats {
            bytes_read: 10,
            bytes_written: 5,
            ..Default::default()
        };
        assert_eq!(s.bytes_total(), 15);
    }

    #[test]
    fn row_hit_rate_derives_from_cols_and_acts() {
        let s = DramStats {
            col_cmds: 10,
            demand_acts: 3,
            ..Default::default()
        };
        assert!((s.row_hit_rate() - 0.7).abs() < 1e-12);
        assert_eq!(DramStats::default().row_hit_rate(), 0.0);
        // More ACTs than columns (multi-burst corner) clamps to 0.
        let s = DramStats {
            col_cmds: 2,
            demand_acts: 5,
            ..Default::default()
        };
        assert_eq!(s.row_hit_rate(), 0.0);
    }

    #[test]
    fn bus_utilization_normalises_by_channels_and_time() {
        let s = DramStats {
            bus_busy_cycles: 500,
            ..Default::default()
        };
        assert!((s.bus_utilization(2, 1000) - 0.25).abs() < 1e-12);
        assert_eq!(s.bus_utilization(0, 1000), 0.0);
        assert_eq!(s.bus_utilization(2, 0), 0.0);
    }
}
