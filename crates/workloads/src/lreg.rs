//! Phoenix **LREG** — linear regression over a 50 MB-shaped key file.
//!
//! Threads stream disjoint ranges of (x, y) samples and keep the five
//! regression sums in registers; a tiny shared reduction closes the run.
//! Practically the entire reference stream has zero reuse — the most
//! extreme L-type workload of the suite, and the strongest case for
//! α-driven HBM bypass.

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};

const POINT_BYTES: u64 = 16; // (x, y) as two f64

pub(crate) fn generate(cfg: &GenConfig) -> ThreadTraces {
    let points = cfg.count(2 << 20) as u64;
    let mut layout = Layout::new();
    let data = layout.alloc(points * POINT_BYTES);
    let partials = layout.alloc(cfg.threads as u64 * 64);
    let mut b = TraceBuilder::new(cfg);
    let threads = cfg.threads as u64;
    let chunk = points / threads;

    for t in 0..threads {
        let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(points));
        for i in lo..hi {
            let tt = t as usize;
            // One 16 B point per access pair; sums stay in registers.
            b.load(tt, elem(data, i, POINT_BYTES), 5);
            if !b.has_budget(tt) {
                break;
            }
        }
        // Spill the partial sums once per thread.
        b.store(t as usize, elem(partials, t, 64), 3);
    }
    // Reduction on thread 0.
    for t in 0..threads {
        b.load(0, elem(partials, t, 64), 2);
    }
    b.store(0, elem(partials, 0, 64), 2);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;

    #[test]
    fn deterministic() {
        let cfg = GenConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn nearly_pure_stream() {
        let cfg = GenConfig::tiny();
        let flat: Vec<_> = generate(&cfg).into_iter().flatten().collect();
        let s = TraceStats::from_trace(&flat);
        let reuse = s.accesses as f64 / s.footprint_lines as f64;
        // Four 16 B points per 64 B line: about 4 accesses per line.
        assert!(reuse < 6.0, "pure streaming expected: {reuse}");
        assert!(s.store_fraction() < 0.05);
    }
}
