//! **KVZ** — Zipfian key-value serving, the first server-class scenario
//! of the engine (DESIGN.md §3.15).
//!
//! Models a memcached-style node: a hash directory of 8-byte slots plus
//! a value heap of fixed-size records. Every operation samples a key
//! from a Zipfian popularity law (θ = 0.99 by default, the YCSB
//! convention), probes the directory, then reads the value lines; a
//! configurable fraction of operations rewrites the value and updates
//! the directory slot. High skew concentrates traffic on a hot key set
//! that fits the DRAM cache — an F-type reuse profile whose *cold tail*
//! still streams enough lines to punish indiscriminate caching, which
//! is exactly the regime where α-counting pays.

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};
use rand::Rng;

/// Tunables for the key-value scenario. [`Default`] is the registry
/// configuration; library callers can explore other mixes through
/// [`generate_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvParams {
    /// Zipfian skew θ in thousandths (990 ⇒ θ = 0.99). θ = 0 is
    /// uniform; larger is more skewed.
    pub theta_milli: u32,
    /// Percentage of operations that write their value (YCSB-B-shaped
    /// 5 % by default).
    pub write_pct: u32,
    /// Key-space size before shrink scaling.
    pub keys_full: usize,
    /// Cache lines per value record.
    pub value_lines: u64,
}

impl Default for KvParams {
    fn default() -> Self {
        Self {
            theta_milli: 990,
            write_pct: 5,
            keys_full: 256 << 10,
            value_lines: 2,
        }
    }
}

/// A cumulative Zipfian distribution over `n` ranks, sampled by binary
/// search on a uniform deviate. Built once per generation — O(n) setup,
/// O(log n) per sample, fully deterministic for a given `(n, θ)`.
struct ZipfTable {
    cum: Vec<f64>,
}

impl ZipfTable {
    fn new(n: usize, theta: f64) -> Self {
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Self { cum }
    }

    /// Rank for uniform deviate `u ∈ [0, 1)`; rank 0 is the hottest.
    fn sample(&self, u: f64) -> usize {
        self.cum
            .partition_point(|&c| c < u)
            .min(self.cum.len() - 1)
    }
}

pub(crate) fn generate(cfg: &GenConfig) -> ThreadTraces {
    generate_with(cfg, KvParams::default())
}

/// Generates the key-value trace under explicit [`KvParams`].
pub fn generate_with(cfg: &GenConfig, p: KvParams) -> ThreadTraces {
    let keys = cfg.count(p.keys_full) as u64;
    let value_bytes = p.value_lines * 64;
    let mut layout = Layout::new();
    let dir = layout.alloc(keys * 8);
    let heap = layout.alloc(keys * value_bytes);
    let zipf = ZipfTable::new(keys as usize, p.theta_milli as f64 / 1000.0);
    let mut b = TraceBuilder::new(cfg);

    for t in 0..cfg.threads {
        // Each thread is an independent request loop with its own
        // popularity permutation offset, so threads share the hot set
        // without replaying identical key sequences.
        let mut rng = cfg.rng(0x4B56_0000 + t as u64);
        let rot: u64 = rng.gen_range(0u64..keys);
        while b.has_budget(t) {
            let rank = zipf.sample(rng.gen::<f64>()) as u64;
            // Hot ranks land on scattered slots: rotate + golden-ratio
            // scramble so popularity is not address-correlated.
            let key = (rank + rot) % keys;
            let slot = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % keys;
            let is_write = rng.gen_range(0u32..100) < p.write_pct;
            // Directory probe.
            b.load(t, elem(dir, slot, 8), 2);
            // Value lines.
            let vbase = elem(heap, slot, value_bytes);
            for l in 0..p.value_lines {
                if is_write {
                    b.store(t, elem(vbase, l, 64), 1);
                } else {
                    b.load(t, elem(vbase, l, 64), 1);
                }
            }
            if is_write {
                // Version/length update in the directory slot.
                b.store(t, elem(dir, slot, 8), 1);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;

    #[test]
    fn deterministic() {
        let cfg = GenConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn skew_concentrates_reuse() {
        let cfg = GenConfig::tiny();
        let reuse_of = |traces: ThreadTraces| {
            let flat: Vec<_> = traces.into_iter().flatten().collect();
            let s = TraceStats::from_trace(&flat);
            s.accesses as f64 / s.footprint_lines as f64
        };
        // Zipfian skew revisits the hot set far more than a uniform
        // sampler of the same key space and budget does.
        let skewed = reuse_of(generate(&cfg));
        let uniform = reuse_of(generate_with(
            &cfg,
            KvParams {
                theta_milli: 0,
                ..KvParams::default()
            },
        ));
        assert!(skewed > 1.3, "hot set never revisited: {skewed}");
        assert!(
            skewed > 1.4 * uniform,
            "Zipfian reuse {skewed} not above uniform {uniform}"
        );
    }

    #[test]
    fn write_mix_close_to_configured() {
        let cfg = GenConfig::tiny();
        let flat: Vec<_> = generate(&cfg).into_iter().flatten().collect();
        let stores = flat.iter().filter(|a| a.op.is_store()).count();
        let frac = stores as f64 / flat.len() as f64;
        // 5 % of ops write value_lines + 1 of their ~3 accesses.
        assert!(frac > 0.01 && frac < 0.15, "store fraction {frac}");
    }

    #[test]
    fn uniform_theta_spreads_traffic() {
        let cfg = GenConfig::tiny();
        let skewed = generate_with(&cfg, KvParams::default());
        let uniform = generate_with(
            &cfg,
            KvParams {
                theta_milli: 0,
                ..KvParams::default()
            },
        );
        let lines = |t: &ThreadTraces| {
            let flat: Vec<_> = t.iter().flatten().copied().collect();
            TraceStats::from_trace(&flat).footprint_lines
        };
        assert!(
            lines(&uniform) > lines(&skewed),
            "uniform sampling must touch more distinct lines"
        );
    }
}
