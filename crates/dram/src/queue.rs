//! Indexed per-channel transaction queue (DESIGN.md §3.8).
//!
//! A slab of transactions threaded by two intrusive lists:
//!
//! * the **arrival list** (`prev`/`next`) — every queued transaction in
//!   FCFS order; its first [`SCHED_WINDOW`] nodes are the scheduler
//!   window (`in_window`, delimited by `window_tail`);
//! * a **per-bank list** (`bank_prev`/`bank_next`) — only the in-window
//!   transactions of one bank, also in arrival order (entrants join in
//!   arrival order, so the list stays sorted without searching).
//!
//! Each bank additionally carries incremental row-hit counters
//! (`hit_reads`/`hit_writes`): the number of its in-window,
//! unfinished transactions targeting the currently open row. Banks with
//! in-window work are tracked in a dense `active` vector so a
//! scheduling pass visits O(banks-with-work), not O(ranks × banks).
//!
//! Invariants (checked by `debug_assert` and the differential suite):
//!
//! 1. window membership is monotone — a transaction enters the window
//!    (at push while the window has room, or by promotion when an older
//!    one retires) and stays until retired;
//! 2. the per-bank lists partition the window: every in-window
//!    transaction is on exactly its bank's list, no out-of-window one is;
//! 3. `hit_reads`/`hit_writes` equal the count of in-window
//!    transactions with `bursts_left > 0` whose row matches the bank's
//!    open row (zero while the bank is closed). They are adjusted at
//!    push/promotion, on the final burst of a column command, and
//!    recounted/zeroed when ACT/PRE/refresh change the open row;
//! 4. `active` holds exactly the flat bank ids with `window_len > 0`.
//!
//! Hot fields (location, kind, bursts, links) and cold fields (id,
//! meta, timestamps) live in separate slabs so the window walks touch
//! only the hot array.

use crate::system::{TxnId, TxnKind};
use crate::topology::DramLoc;
use redcache_types::Cycle;

/// Transactions visible to the scheduler per slot. Real controllers
/// schedule over a bounded associative queue (Table I-era parts use
/// 32-entry transaction queues); bounding the window also bounds every
/// per-slot walk.
pub(crate) const SCHED_WINDOW: usize = 32;

/// Null link.
pub(crate) const NIL: u32 = u32::MAX;

/// Scheduler-hot fields of a queued transaction.
#[derive(Debug, Clone)]
pub(crate) struct TxnHot {
    pub kind: TxnKind,
    pub loc: DramLoc,
    /// Column bursts still to issue (multi-burst for >64 B blocks).
    pub bursts_left: u32,
    /// Arrival sequence number — the FCFS age tiebreak. Strictly
    /// increasing per channel, never reused.
    pub seq: u64,
    /// Inside the scheduler window (invariant 1: monotone until retire).
    pub in_window: bool,
    prev: u32,
    next: u32,
    bank_prev: u32,
    bank_next: u32,
}

/// Cold fields, touched only at enqueue, burst completion and retire.
#[derive(Debug, Clone)]
pub(crate) struct TxnCold {
    pub id: TxnId,
    /// Caller-supplied tag returned with the completion.
    pub meta: u64,
    pub enqueued_at: Cycle,
    /// Completion time of the last issued burst (valid when
    /// `bursts_left == 0`; nonzero once any burst issued).
    pub data_done_at: Cycle,
}

/// Per-bank index: the in-window list and its row-hit counters.
#[derive(Debug, Clone)]
pub(crate) struct BankQ {
    head: u32,
    tail: u32,
    /// In-window transactions of this bank (= the list length).
    pub window_len: u32,
    /// In-window unfinished reads targeting the open row.
    pub hit_reads: u32,
    /// In-window unfinished writes targeting the open row.
    pub hit_writes: u32,
    /// Back-pointer into `TxnQueue::active` while `window_len > 0`.
    active_pos: u32,
}

impl BankQ {
    fn new() -> Self {
        Self {
            head: NIL,
            tail: NIL,
            window_len: 0,
            hit_reads: 0,
            hit_writes: 0,
            active_pos: NIL,
        }
    }
}

/// The indexed transaction queue of one channel.
#[derive(Debug, Clone)]
pub(crate) struct TxnQueue {
    hot: Vec<TxnHot>,
    cold: Vec<TxnCold>,
    free: Vec<u32>,
    /// Arrival list.
    head: u32,
    tail: u32,
    /// Last in-window node (NIL when the window is empty).
    window_tail: u32,
    len: usize,
    window_len: usize,
    banks: Vec<BankQ>,
    /// Flat ids of banks with `window_len > 0` (invariant 4).
    active: Vec<u32>,
    next_seq: u64,
    banks_per_rank: usize,
}

impl TxnQueue {
    pub(crate) fn new(ranks: usize, banks_per_rank: usize) -> Self {
        Self {
            hot: Vec::new(),
            cold: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            window_tail: NIL,
            len: 0,
            window_len: 0,
            banks: (0..ranks * banks_per_rank).map(|_| BankQ::new()).collect(),
            active: Vec::new(),
            next_seq: 0,
            banks_per_rank,
        }
    }

    /// Flat bank id of a location.
    pub(crate) fn flat(&self, loc: &DramLoc) -> usize {
        loc.rank * self.banks_per_rank + loc.bank
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of in-window transactions, `min(len, SCHED_WINDOW)`.
    pub(crate) fn window_len(&self) -> usize {
        self.window_len
    }

    pub(crate) fn hot(&self, idx: u32) -> &TxnHot {
        &self.hot[idx as usize]
    }

    #[cfg(test)]
    pub(crate) fn cold(&self, idx: u32) -> &TxnCold {
        &self.cold[idx as usize]
    }

    /// Banks with in-window work, in no particular order (membership is
    /// maintained by swap-remove; schedulers must order by `seq`, never
    /// by position in this slice).
    pub(crate) fn active_banks(&self) -> &[u32] {
        &self.active
    }

    pub(crate) fn bank(&self, flat: usize) -> &BankQ {
        &self.banks[flat]
    }

    /// Oldest in-window transaction of a bank (NIL when none).
    pub(crate) fn bank_head(&self, flat: usize) -> u32 {
        self.banks[flat].head
    }

    /// Next-younger in-window transaction on the same bank's list.
    pub(crate) fn bank_next(&self, idx: u32) -> u32 {
        self.hot[idx as usize].bank_next
    }

    /// In-window slab indices in arrival order (oldest first).
    #[cfg(test)]
    pub(crate) fn iter_window(&self) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL || !self.hot[cur as usize].in_window {
                return None;
            }
            let out = cur;
            cur = self.hot[cur as usize].next;
            Some(out)
        })
    }

    /// Enqueues a transaction at the arrival tail. `open_row` is the
    /// target bank's currently open row, consulted for the hit counters
    /// when the transaction lands inside the window.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push(
        &mut self,
        id: TxnId,
        kind: TxnKind,
        loc: DramLoc,
        bursts: u32,
        meta: u64,
        now: Cycle,
        open_row: Option<u64>,
    ) -> u32 {
        debug_assert!(bursts > 0);
        let seq = self.next_seq;
        self.next_seq += 1;
        let hot = TxnHot {
            kind,
            loc,
            bursts_left: bursts,
            seq,
            in_window: false,
            prev: self.tail,
            next: NIL,
            bank_prev: NIL,
            bank_next: NIL,
        };
        let cold = TxnCold {
            id,
            meta,
            enqueued_at: now,
            data_done_at: 0,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.hot[i as usize] = hot;
                self.cold[i as usize] = cold;
                i
            }
            None => {
                let i = self.hot.len() as u32;
                assert!(i < NIL, "transaction slab overflow");
                self.hot.push(hot);
                self.cold.push(cold);
                i
            }
        };
        if self.tail != NIL {
            self.hot[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
        self.len += 1;
        if self.window_len < SCHED_WINDOW {
            self.enter_window(idx, open_row);
        }
        idx
    }

    /// Marks `idx` in-window, appends it to its bank's list, and updates
    /// the hit counters against `open_row`. Callers guarantee `idx` is
    /// the oldest out-of-window node (arrival order is preserved).
    fn enter_window(&mut self, idx: u32, open_row: Option<u64>) {
        let i = idx as usize;
        debug_assert!(!self.hot[i].in_window);
        debug_assert!(self.hot[i].bursts_left > 0, "entrants have not issued");
        self.hot[i].in_window = true;
        self.window_tail = idx;
        self.window_len += 1;
        let fb = self.flat(&self.hot[i].loc);
        let bq = &mut self.banks[fb];
        self.hot[i].bank_prev = bq.tail;
        self.hot[i].bank_next = NIL;
        if bq.tail != NIL {
            let t = bq.tail as usize;
            bq.window_len += 1;
            let row_hit = open_row == Some(self.hot[i].loc.row);
            let kind = self.hot[i].kind;
            self.hot[t].bank_next = idx;
            self.banks[fb].tail = idx;
            if row_hit {
                self.bump_hit(fb, kind, 1);
            }
        } else {
            bq.head = idx;
            bq.tail = idx;
            bq.window_len = 1;
            bq.active_pos = self.active.len() as u32;
            if open_row == Some(self.hot[i].loc.row) {
                match self.hot[i].kind {
                    TxnKind::Read => self.banks[fb].hit_reads = 1,
                    TxnKind::Write => self.banks[fb].hit_writes = 1,
                }
            }
            self.active.push(fb as u32);
        }
    }

    fn bump_hit(&mut self, flat: usize, kind: TxnKind, delta: i32) {
        let c = match kind {
            TxnKind::Read => &mut self.banks[flat].hit_reads,
            TxnKind::Write => &mut self.banks[flat].hit_writes,
        };
        *c = c.checked_add_signed(delta).expect("hit counter underflow");
    }

    /// Decrements a bank's hit counter — the transaction of `kind` just
    /// issued its final burst (it stops counting as pending work even
    /// though it stays linked until [`Self::retire`] this same slot).
    pub(crate) fn dec_hit(&mut self, flat: usize, kind: TxnKind) {
        self.bump_hit(flat, kind, -1);
    }

    /// Rebuilds a bank's hit counters after its open row changed to
    /// `row` (ACT). O(bank window length), only on row transitions.
    pub(crate) fn recount_hits(&mut self, flat: usize, row: u64) {
        let (mut r, mut w) = (0u32, 0u32);
        let mut i = self.banks[flat].head;
        while i != NIL {
            let h = &self.hot[i as usize];
            if h.bursts_left > 0 && h.loc.row == row {
                match h.kind {
                    TxnKind::Read => r += 1,
                    TxnKind::Write => w += 1,
                }
            }
            i = h.bank_next;
        }
        self.banks[flat].hit_reads = r;
        self.banks[flat].hit_writes = w;
    }

    /// Zeroes a bank's hit counters — its row was closed (PRE or a
    /// refresh-forced close).
    pub(crate) fn zero_hits(&mut self, flat: usize) {
        self.banks[flat].hit_reads = 0;
        self.banks[flat].hit_writes = 0;
    }

    /// Records one issued burst on `idx`: decrements `bursts_left`,
    /// stamps `data_done_at`. Returns `(bursts_remaining,
    /// had_issued_before)` so the caller can maintain in-flight and hit
    /// counters.
    pub(crate) fn record_burst(&mut self, idx: u32, data_end: Cycle) -> (u32, bool) {
        let was_started = self.cold[idx as usize].data_done_at > 0;
        let h = &mut self.hot[idx as usize];
        debug_assert!(h.bursts_left > 0);
        h.bursts_left -= 1;
        let left = h.bursts_left;
        self.cold[idx as usize].data_done_at = data_end;
        (left, was_started)
    }

    /// Unlinks a finished transaction in O(1) and promotes the oldest
    /// out-of-window transaction (if any) into the freed window slot.
    /// `open_row_of` reports the open row of a flat bank id, needed to
    /// seed the promoted entrant's hit-counter contribution.
    ///
    /// Returns the retired transaction's kind and cold fields.
    pub(crate) fn retire(
        &mut self,
        idx: u32,
        open_row_of: impl Fn(usize) -> Option<u64>,
    ) -> (TxnKind, TxnCold) {
        let i = idx as usize;
        debug_assert!(self.hot[i].in_window, "only window txns can finish");
        debug_assert_eq!(self.hot[i].bursts_left, 0, "retire only finished txns");
        // The entrant is the first node past the window boundary:
        // exactly the node that becomes the window's 32nd once `idx`
        // leaves (computed before any unlinking).
        let entrant = self.hot[self.window_tail as usize].next;

        // Arrival-list unlink.
        let (p, n) = (self.hot[i].prev, self.hot[i].next);
        if p != NIL {
            self.hot[p as usize].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.hot[n as usize].prev = p;
        } else {
            self.tail = p;
        }
        if self.window_tail == idx {
            self.window_tail = p;
        }
        self.len -= 1;
        self.window_len -= 1;

        // Bank-list unlink (hit counters need no adjustment: a finished
        // transaction stopped counting when its last burst issued).
        let fb = self.flat(&self.hot[i].loc);
        let (bp, bn) = (self.hot[i].bank_prev, self.hot[i].bank_next);
        if bp != NIL {
            self.hot[bp as usize].bank_next = bn;
        } else {
            self.banks[fb].head = bn;
        }
        if bn != NIL {
            self.hot[bn as usize].bank_prev = bp;
        } else {
            self.banks[fb].tail = bp;
        }
        self.banks[fb].window_len -= 1;
        if self.banks[fb].window_len == 0 {
            let pos = self.banks[fb].active_pos as usize;
            self.banks[fb].active_pos = NIL;
            self.active.swap_remove(pos);
            if pos < self.active.len() {
                let moved = self.active[pos] as usize;
                self.banks[moved].active_pos = pos as u32;
            }
        }

        let kind = self.hot[i].kind;
        let cold = self.cold[i].clone();
        self.hot[i].in_window = false;
        self.free.push(idx);

        if entrant != NIL {
            let efb = self.flat(&self.hot[entrant as usize].loc);
            self.enter_window(entrant, open_row_of(efb));
        }
        (kind, cold)
    }
}

// Snapshot encoding (DESIGN.md §3.13): the slab, both intrusive lists
// and every incremental counter are encoded verbatim — a decoded queue
// is field-for-field the queue that was captured, so the invariants
// hold by construction on any payload that round-tripped through
// `encode`/`decode` of real state.
redcache_types::wire_struct!(TxnHot {
    kind,
    loc,
    bursts_left,
    seq,
    in_window,
    prev,
    next,
    bank_prev,
    bank_next,
});
redcache_types::wire_struct!(TxnCold {
    id,
    meta,
    enqueued_at,
    data_done_at,
});
redcache_types::wire_struct!(BankQ {
    head,
    tail,
    window_len,
    hit_reads,
    hit_writes,
    active_pos,
});
redcache_types::wire_struct!(TxnQueue {
    hot,
    cold,
    free,
    head,
    tail,
    window_tail,
    len,
    window_len,
    banks,
    active,
    next_seq,
    banks_per_rank,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(rank: usize, bank: usize, row: u64) -> DramLoc {
        DramLoc {
            channel: 0,
            rank,
            bank,
            row,
            col: 0,
        }
    }

    fn push(q: &mut TxnQueue, id: u64, kind: TxnKind, l: DramLoc, open: Option<u64>) -> u32 {
        q.push(TxnId(id), kind, l, 1, id, 0, open)
    }

    #[test]
    fn window_fills_then_overflows_to_arrival_list() {
        let mut q = TxnQueue::new(1, 2);
        for i in 0..40 {
            push(&mut q, i, TxnKind::Read, loc(0, (i % 2) as usize, i), None);
        }
        assert_eq!(q.len(), 40);
        assert_eq!(q.window_len(), SCHED_WINDOW);
        assert_eq!(q.bank(0).window_len + q.bank(1).window_len, 32);
        let seqs: Vec<u64> = q.iter_window().map(|i| q.hot(i).seq).collect();
        assert_eq!(seqs, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn retire_promotes_oldest_waiting_txn() {
        let mut q = TxnQueue::new(1, 1);
        let idxs: Vec<u32> = (0..34)
            .map(|i| push(&mut q, i, TxnKind::Read, loc(0, 0, i), None))
            .collect();
        // Finish txn 5 (mid-window) and retire it.
        q.record_burst(idxs[5], 100);
        let (_, cold) = q.retire(idxs[5], |_| None);
        assert_eq!(cold.id, TxnId(5));
        assert_eq!(q.len(), 33);
        assert_eq!(q.window_len(), SCHED_WINDOW);
        // The window is now txns 0..=4, 6..=32: txn 32 was promoted.
        let seqs: Vec<u64> = q.iter_window().map(|i| q.hot(i).seq).collect();
        let expected: Vec<u64> = (0..33).filter(|&s| s != 5).collect();
        assert_eq!(seqs, expected);
        // Bank list mirrors the window in order.
        let mut bank_seqs = Vec::new();
        let mut i = q.bank_head(0);
        while i != NIL {
            bank_seqs.push(q.hot(i).seq);
            i = q.bank_next(i);
        }
        assert_eq!(bank_seqs, expected);
    }

    #[test]
    fn retiring_window_tail_moves_boundary_back() {
        let mut q = TxnQueue::new(1, 1);
        let idxs: Vec<u32> = (0..3)
            .map(|i| push(&mut q, i, TxnKind::Read, loc(0, 0, i), None))
            .collect();
        q.record_burst(idxs[2], 10);
        q.retire(idxs[2], |_| None);
        assert_eq!(q.window_len(), 2);
        // A new push still lands in the window, after the old tail.
        push(&mut q, 9, TxnKind::Read, loc(0, 0, 9), None);
        let seqs: Vec<u64> = q.iter_window().map(|i| q.hot(i).seq).collect();
        assert_eq!(seqs, vec![0, 1, 3]);
    }

    #[test]
    fn active_banks_track_window_membership() {
        let mut q = TxnQueue::new(2, 2);
        let a = push(&mut q, 0, TxnKind::Read, loc(0, 1, 5), None);
        push(&mut q, 1, TxnKind::Write, loc(1, 0, 7), None);
        let mut act: Vec<u32> = q.active_banks().to_vec();
        act.sort_unstable();
        assert_eq!(act, vec![1, 2]); // flat ids: rank*2 + bank
        q.record_burst(a, 10);
        q.retire(a, |_| None);
        assert_eq!(q.active_banks(), &[2]);
        assert_eq!(q.bank(1).window_len, 0);
    }

    #[test]
    fn hit_counters_follow_pushes_and_row_changes() {
        let mut q = TxnQueue::new(1, 1);
        // Bank open on row 4: a read hit, a write hit, a conflict.
        let r = push(&mut q, 0, TxnKind::Read, loc(0, 0, 4), Some(4));
        push(&mut q, 1, TxnKind::Write, loc(0, 0, 4), Some(4));
        push(&mut q, 2, TxnKind::Read, loc(0, 0, 9), Some(4));
        assert_eq!((q.bank(0).hit_reads, q.bank(0).hit_writes), (1, 1));
        // The read issues its only burst: it stops counting.
        q.record_burst(r, 50);
        q.dec_hit(0, TxnKind::Read);
        assert_eq!((q.bank(0).hit_reads, q.bank(0).hit_writes), (0, 1));
        q.retire(r, |_| Some(4));
        // PRE closes the row, ACT opens row 9: only the conflict-turned-
        // hit transaction counts now.
        q.zero_hits(0);
        assert_eq!((q.bank(0).hit_reads, q.bank(0).hit_writes), (0, 0));
        q.recount_hits(0, 9);
        assert_eq!((q.bank(0).hit_reads, q.bank(0).hit_writes), (1, 0));
    }

    #[test]
    fn promoted_entrant_contributes_hit_count() {
        let mut q = TxnQueue::new(1, 1);
        let idxs: Vec<u32> = (0..33)
            .map(|i| push(&mut q, i, TxnKind::Read, loc(0, 0, i), Some(32)))
            .collect();
        // Txn 32 (row 32) waits outside the window; the bank's open row
        // is 32, so no in-window txn hits it yet.
        assert_eq!(q.bank(0).hit_reads, 0);
        q.record_burst(idxs[0], 10);
        q.retire(idxs[0], |_| Some(32));
        // Promotion pulled txn 32 in: it hits the open row.
        assert_eq!(q.bank(0).hit_reads, 1);
        assert_eq!(q.window_len(), SCHED_WINDOW);
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut q = TxnQueue::new(1, 1);
        let a = push(&mut q, 0, TxnKind::Read, loc(0, 0, 1), None);
        q.record_burst(a, 5);
        q.retire(a, |_| None);
        let b = push(&mut q, 1, TxnKind::Read, loc(0, 0, 2), None);
        assert_eq!(a, b, "freed slot should be reused");
        assert_eq!(q.len(), 1);
        assert_eq!(q.cold(b).id, TxnId(1));
    }
}
