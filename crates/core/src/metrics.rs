//! Run reports: everything a figure needs from one simulation.

use crate::epoch::TimeSeries;
use redcache_cache::CacheStats;
use redcache_dram::{AuditStats, DramStats};
use redcache_energy::SystemEnergy;
use redcache_policies::{ControllerStats, PolicyKind};
use redcache_types::Cycle;
use serde::{Deserialize, Serialize};

/// The complete outcome of one simulation run.
///
/// `PartialEq` compares every field — the equivalence test uses it to
/// assert that event-driven time advance reproduces the cycle-by-cycle
/// walk bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Architecture simulated.
    pub policy: PolicyKind,
    /// Workload label, when run through the suite harness.
    pub workload: Option<String>,
    /// Execution time in CPU cycles (the Fig. 9 quantity).
    pub cycles: Cycle,
    /// Instructions dispatched across all cores.
    pub instructions: u64,
    /// Below-L3 read requests issued.
    pub mem_reads: u64,
    /// Below-L3 writebacks issued.
    pub mem_writebacks: u64,
    /// Controller event counters.
    pub ctl: ControllerStats,
    /// WideIO DRAM statistics (absent for No-HBM).
    pub hbm: Option<DramStats>,
    /// DDR4 DRAM statistics.
    pub ddr: DramStats,
    /// L1 aggregate statistics.
    pub l1: CacheStats,
    /// L2 aggregate statistics.
    pub l2: CacheStats,
    /// Shared L3 statistics.
    pub l3: CacheStats,
    /// Energy rollup (Fig. 10 = `energy.hbm`, Fig. 11 = total).
    pub energy: SystemEnergy,
    /// Policy-specific extras (α, γ, RCU drain mix, …).
    pub extras: Vec<(String, f64)>,
    /// Shadow-memory check failures (must be 0).
    pub shadow_violations: u64,
    /// WideIO timing-audit results: present when
    /// [`crate::SimConfig::audit_timing`] was on and the architecture
    /// has an HBM side.
    #[serde(default)]
    pub hbm_audit: Option<AuditStats>,
    /// DDR4 timing-audit results: present when
    /// [`crate::SimConfig::audit_timing`] was on.
    #[serde(default)]
    pub ddr_audit: Option<AuditStats>,
    /// Per-epoch series: present when
    /// [`crate::SimConfig::epoch_cycles`] was set.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub timeseries: Option<TimeSeries>,
}

impl RunReport {
    /// Instructions per cycle across the whole chip.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Total bytes moved over WideIO + DDRx — the "transferred data"
    /// axis of Fig. 2.
    pub fn transferred_bytes(&self) -> u64 {
        self.hbm.map(|s| s.bytes_total()).unwrap_or(0) + self.ddr.bytes_total()
    }

    /// Aggregate consumed bandwidth in bytes per second over both
    /// interfaces — the vertical axis of Fig. 2.
    pub fn aggregate_bandwidth_bytes_per_s(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let seconds = self.cycles as f64 / redcache_energy::CPU_HZ;
        self.transferred_bytes() as f64 / seconds
    }

    /// HBM-cache hit rate (0 for No-HBM).
    pub fn hbm_hit_rate(&self) -> f64 {
        self.ctl.hit_rate()
    }

    /// Speedup of this run over `base` (ratio of execution times).
    pub fn speedup_over(&self, base: &RunReport) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            base.cycles as f64 / self.cycles as f64
        }
    }

    /// This run's execution time normalised to `base` (Fig. 9 bars).
    pub fn time_normalized_to(&self, base: &RunReport) -> f64 {
        if base.cycles == 0 {
            0.0
        } else {
            self.cycles as f64 / base.cycles as f64
        }
    }

    /// HBM energy normalised to `base` (Fig. 10 bars).
    pub fn hbm_energy_normalized_to(&self, base: &RunReport) -> f64 {
        let b = base.energy.hbm.total_j();
        if b == 0.0 {
            0.0
        } else {
            self.energy.hbm.total_j() / b
        }
    }

    /// System energy normalised to `base` (Fig. 11 bars).
    pub fn system_energy_normalized_to(&self, base: &RunReport) -> f64 {
        let b = base.energy.total_j();
        if b == 0.0 {
            0.0
        } else {
            self.energy.total_j() / b
        }
    }
}

/// Geometric mean over a slice of positive values (the paper reports
/// per-benchmark bars plus a mean).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (s / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: Cycle) -> RunReport {
        RunReport {
            policy: PolicyKind::Alloy,
            workload: None,
            cycles,
            instructions: 1000,
            mem_reads: 10,
            mem_writebacks: 5,
            ctl: ControllerStats::default(),
            hbm: Some(DramStats {
                bytes_read: 100,
                bytes_written: 50,
                ..Default::default()
            }),
            ddr: DramStats {
                bytes_read: 30,
                bytes_written: 20,
                ..Default::default()
            },
            l1: CacheStats::default(),
            l2: CacheStats::default(),
            l3: CacheStats::default(),
            energy: SystemEnergy::default(),
            extras: vec![],
            shadow_violations: 0,
            hbm_audit: None,
            ddr_audit: None,
            timeseries: None,
        }
    }

    #[test]
    fn derived_metrics() {
        let a = report(1000);
        let b = report(2000);
        assert_eq!(a.ipc(), 1.0);
        assert_eq!(a.transferred_bytes(), 200);
        assert_eq!(b.time_normalized_to(&a), 2.0);
        assert_eq!(b.speedup_over(&a), 0.5);
        assert!(a.aggregate_bandwidth_bytes_per_s() > 0.0);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }
}
