//! **Table I** — the evaluated system configurations, printed from the
//! presets so the code and the paper stay verifiably in sync.

use redcache::{PolicyKind, SimConfig};

fn main() {
    let c = SimConfig::table1(PolicyKind::Red(redcache::RedVariant::Full));
    println!("== Table I: evaluated system configurations ==\n");
    println!("Processor");
    println!(
        "  Cores           {} x {}-issue OoO, {} ROB entries, 3.2 GHz",
        c.hierarchy.cores, c.core.issue_width, c.core.rob_size
    );
    let g = |geo: &redcache_cache::CacheGeometry| {
        format!(
            "{} KB, {}-way, LRU, {} B block",
            geo.size_bytes / 1024,
            geo.ways,
            geo.block_bytes
        )
    };
    println!("  L1 data cache   {}", g(&c.hierarchy.l1));
    println!("  L2 cache        {}", g(&c.hierarchy.l2));
    println!("  L3 cache        {} (shared)", g(&c.hierarchy.l3));

    for (name, d) in [
        ("DRAM cache (WideIO/HBM)", &c.policy.hbm),
        ("Off-chip main memory (DDR4)", &c.policy.ddr),
    ] {
        let t = &d.timing;
        println!("\n{name}");
        println!(
            "  Organisation    {} GB: {} channels, {} ranks/channel, {} banks/rank, {}-bit-ish bus, 1600 MHz DDR4",
            d.topology.capacity_bytes() >> 30,
            d.topology.channels,
            d.topology.ranks,
            d.topology.banks,
            d.topology.bytes_per_burst * 2, // 64 B per burst over tBL
        );
        println!(
            "  Timing (CPU cyc) tRCD:{} tCAS:{} tCCD:{} tWTR:{} tWR:{} tRTP:{} tBL:{}",
            t.t_rcd, t.t_cas, t.t_ccd, t.t_wtr, t.t_wr, t.t_rtp, t.t_bl
        );
        println!(
            "                   tCWD:{} tRP:{} tRRD:{} tRAS:{} tRC:{} tFAW:{}",
            t.t_cwd, t.t_rp, t.t_rrd, t.t_ras, t.t_rc, t.t_faw
        );
    }
    println!("\n(scaled evaluation preset shrinks capacities only; organisation and timing");
    println!(" are identical — see DESIGN.md section 1)");
    let s = SimConfig::scaled(PolicyKind::Alloy);
    println!(
        " scaled: L3 {} KB, HBM {} MB, DDR {} MB",
        s.hierarchy.l3.size_bytes / 1024,
        s.policy.hbm.topology.capacity_bytes() >> 20,
        s.policy.ddr.topology.capacity_bytes() >> 20
    );
}
