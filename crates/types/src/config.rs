//! Shared configuration-validation error type.
//!
//! Every configuration builder in the workspace (`SimConfig::builder`,
//! `DramConfig::builder`, `HierarchyConfig::builder`) funnels its
//! validation failures into [`ConfigError`], so callers handle one error
//! type regardless of which layer rejected the configuration.

/// A rejected configuration: carries a human-readable description of
/// the first inconsistency found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl ConfigError {
    /// Wraps a validation message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// The validation message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl From<String> for ConfigError {
    fn from(msg: String) -> Self {
        Self(msg)
    }
}

impl From<&str> for ConfigError {
    fn from(msg: &str) -> Self {
        Self(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carries_and_displays_message() {
        let e = ConfigError::new("queue_depth must be nonzero");
        assert_eq!(e.message(), "queue_depth must be nonzero");
        assert!(e.to_string().contains("queue_depth"));
        let from_string: ConfigError = String::from("x").into();
        assert_eq!(from_string, ConfigError::new("x"));
    }
}
