//! SPLASH-2 **CH** — blocked Cholesky factorisation.
//!
//! Block-major storage (as SPLASH-2's supernodal layout). Per outer
//! step `k`: factor the diagonal block, triangular-solve the blocks
//! below it, then rank-update the trailing submatrix. Each block of the
//! `k`-th column is reused once per trailing block it updates, giving
//! the reuse band that grows toward the matrix edge; finished blocks
//! see their *last* access as a store (§II.C's last-write signature).

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};
use redcache_types::PhysAddr;

const ELEM: u64 = 8;
const BLK: usize = 32; // 32x32 doubles = 8 KB per block

struct Blocked {
    base: PhysAddr,
    nb: usize,
}

impl Blocked {
    fn block(&self, bi: usize, bj: usize) -> PhysAddr {
        let blk_bytes = (BLK * BLK) as u64 * ELEM;
        PhysAddr::new(self.base.raw() + ((bi * self.nb + bj) as u64) * blk_bytes)
    }
}

/// Touches every line of a block: loads, and stores when `write`.
fn touch_block(b: &mut TraceBuilder, t: usize, base: PhysAddr, write: bool, gap: u32) {
    let lines = (BLK * BLK) as u64 * ELEM / 64;
    for l in 0..lines {
        b.load(t, elem(base, l * 8, ELEM), gap);
        if write {
            b.store(t, elem(base, l * 8, ELEM), 1);
        }
    }
}

pub(crate) fn generate(cfg: &GenConfig) -> ThreadTraces {
    let n = cfg.dim(768);
    let nb = (n / BLK).max(2);
    let mut layout = Layout::new();
    let a = Blocked {
        base: layout.alloc((nb * nb * BLK * BLK) as u64 * ELEM),
        nb,
    };
    let mut b = TraceBuilder::new(cfg);
    let threads = cfg.threads;

    for k in 0..nb {
        // Diagonal factorisation (thread k mod T).
        touch_block(&mut b, k % threads, a.block(k, k), true, 12);
        // Column solves, partitioned across threads.
        for i in k + 1..nb {
            let t = i % threads;
            touch_block(&mut b, t, a.block(k, k), false, 8);
            touch_block(&mut b, t, a.block(i, k), true, 8);
        }
        // Trailing rank-update: A(i,j) -= A(i,k) * A(j,k)^T, lower half.
        for j in k + 1..nb {
            let t = j % threads;
            if !b.has_budget(t) {
                continue;
            }
            for i in j..nb {
                touch_block(&mut b, t, a.block(i, k), false, 10);
                touch_block(&mut b, t, a.block(j, k), false, 2);
                touch_block(&mut b, t, a.block(i, j), true, 2);
            }
        }
        if b.exhausted() {
            break;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;

    #[test]
    fn deterministic() {
        let cfg = GenConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn block_reuse_is_high() {
        let cfg = GenConfig::tiny();
        let flat: Vec<_> = generate(&cfg).into_iter().flatten().collect();
        let s = TraceStats::from_trace(&flat);
        let reuse = s.accesses as f64 / s.footprint_lines as f64;
        assert!(reuse > 3.0, "mean line reuse {reuse}");
    }
}
