//! The daemon itself: the connection front end (an epoll event loop
//! by default, with the original thread-per-connection engine kept as
//! a selectable baseline), the fixed worker pool, and the
//! graceful-shutdown sequence.
//!
//! # Engines
//!
//! * [`Engine::Epoll`] — the default on unix. A small number of event
//!   threads each run a level-triggered [`crate::poll::Poller`] over
//!   nonblocking sockets with per-connection read/write state
//!   machines: requests are parsed incrementally
//!   ([`crate::http::parse_request`]), several pipelined requests in
//!   one buffer are answered in order, and connections persist across
//!   requests (HTTP/1.1 keep-alive) until the client asks for
//!   `Connection: close`, a deadline fires, or the daemon drains.
//!   Idle/read/write deadlines replace the blanket socket timeouts: a
//!   connection mid-request or mid-response gets [`IO_TIMEOUT`] of
//!   inactivity, an idle keep-alive connection [`IDLE_TIMEOUT`].
//!   Beyond `max_connections` admitted sockets, new accepts are
//!   answered `503` and closed immediately (accept-then-503, so the
//!   client gets a diagnosable response instead of a SYN backlog
//!   stall).
//! * [`Engine::Threaded`] — one thread per accepted connection, one
//!   request per connection, blanket socket timeouts. Kept verbatim
//!   as the measured baseline for `redcache-bomber` and as the
//!   non-unix fallback.
//!
//! # Shutdown protocol
//!
//! 1. A `SIGTERM`/`SIGINT` (or `POST /shutdown`) flips the drain state.
//! 2. The front end notices within one poll interval, stops accepting
//!    and reading, flushes pending responses (bounded by
//!    [`DRAIN_FLUSH`] in the event engine), and calls
//!    [`jobs::Daemon::begin_drain`]: new submissions get `503`, and
//!    the queue's sender is dropped.
//! 3. Workers finish the jobs already queued or running — persisting
//!    each result to the spool — then exit when `recv` fails on the
//!    closed, empty channel.
//! 4. [`Server::run`] joins the front end (so the `/shutdown` caller
//!    always receives its `202`) and every worker, then returns.

use crate::api::{resolve, JobRequest, SweepRequest};
use crate::http::{read_request, Request, Response};
use crate::jobs::{self, Daemon, Submitted};
use crate::metrics::bump;
use crate::signals;
use redcache_bench::report_io::{Saved, SCHEMA_VERSION};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the front end checks the shutdown/drain flags.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Inactivity bound while a request or response is in flight. In the
/// threaded engine this is the per-direction socket timeout; in the
/// event engine it is the read/write deadline enforced by the sweep.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Inactivity bound for an idle keep-alive connection (no partial
/// request buffered, nothing left to write).
const IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Bound on the event engine's post-shutdown flush of pending
/// responses.
const DRAIN_FLUSH: Duration = Duration::from_secs(3);

/// Extra allowance in the drain-time assertion for scheduling noise on
/// a loaded machine.
const DRAIN_SLACK: Duration = Duration::from_secs(5);

/// Applies both I/O timeouts to one accepted connection (threaded
/// engine). A handler's life is bounded by (roughly) one read timeout
/// plus one write timeout; `Server::run` asserts that bound when
/// draining.
fn configure_stream(stream: &TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    Ok(())
}

/// Connection front-end implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Event loop over nonblocking sockets with keep-alive and
    /// pipelining (unix; falls back to `Threaded` elsewhere).
    Epoll,
    /// Thread-per-connection, one request per connection — the
    /// measured baseline.
    Threaded,
}

impl Default for Engine {
    fn default() -> Self {
        if cfg!(unix) {
            Engine::Epoll
        } else {
            Engine::Threaded
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "epoll" | "event" => Ok(Engine::Epoll),
            "threaded" | "thread" => Ok(Engine::Threaded),
            other => Err(format!("unknown engine {other:?} (epoll|threaded)")),
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::Epoll => "epoll",
            Engine::Threaded => "threaded",
        })
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; use port `0` for an ephemeral port.
    pub addr: String,
    /// Worker pool size.
    pub workers: usize,
    /// Bounded queue capacity (admission-control limit).
    pub queue_capacity: usize,
    /// Directory results are persisted to (and warmed from), if any.
    pub spool: Option<PathBuf>,
    /// Connection front end.
    pub engine: Engine,
    /// Admitted-connection ceiling; accepts beyond it are answered
    /// `503` and closed.
    pub max_connections: usize,
    /// Event-loop threads (epoll engine only).
    pub event_threads: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        // REDCACHE_SERVE_ENGINE=threaded|epoll overrides the default,
        // same pattern as REDCACHE_CHANNEL_PAR: it lets CI exercise
        // both front ends without plumbing flags everywhere.
        let engine = std::env::var("REDCACHE_SERVE_ENGINE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_default();
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: redcache_bench::pool::max_workers(),
            queue_capacity: 32,
            spool: None,
            engine,
            max_connections: 1024,
            event_threads: redcache_bench::pool::max_workers().clamp(1, 4),
        }
    }
}

/// A bound-but-not-yet-running daemon.
pub struct Server {
    daemon: Arc<Daemon>,
    listener: TcpListener,
    local_addr: SocketAddr,
    workers: Vec<std::thread::JoinHandle<()>>,
    engine: Engine,
    max_connections: usize,
    event_threads: usize,
}

impl Server {
    /// Binds the listener and starts the worker pool.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound or put into non-blocking
    /// mode.
    pub fn bind(opts: &ServeOptions) -> io::Result<Self> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let workers_n = opts.workers.max(1);
        let (daemon, rx) = Daemon::new(workers_n, opts.queue_capacity, opts.spool.clone());
        let workers = (0..workers_n)
            .map(|widx| {
                let d = daemon.clone();
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{widx}"))
                    .spawn(move || jobs::worker_loop(&d, &rx, widx))
                    .expect("spawn worker")
            })
            .collect();
        Ok(Self {
            daemon,
            listener,
            local_addr,
            workers,
            engine: opts.engine,
            max_connections: opts.max_connections.max(1),
            event_threads: opts.event_threads.clamp(1, 64),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle to the shared daemon state (tests and embedders).
    pub fn daemon(&self) -> Arc<Daemon> {
        self.daemon.clone()
    }

    /// Serves until a shutdown is requested, then drains and joins the
    /// workers. Returns once every accepted job has finished.
    ///
    /// # Errors
    ///
    /// Propagates fatal accept-loop I/O errors (per-connection errors
    /// are logged and survived).
    pub fn run(self) -> io::Result<()> {
        match self.engine {
            #[cfg(unix)]
            Engine::Epoll => self.run_event(),
            #[cfg(not(unix))]
            Engine::Epoll => self.run_threaded(),
            Engine::Threaded => self.run_threaded(),
        }
    }

    /// The epoll event-loop front end: `event_threads` loops share the
    /// listener and each own their accepted connections outright.
    #[cfg(unix)]
    fn run_event(self) -> io::Result<()> {
        let shared = Arc::new(event::Shared {
            daemon: self.daemon.clone(),
            listener: self.listener,
            open: AtomicU64::new(0),
            max_connections: self.max_connections as u64,
        });
        let loops: Vec<_> = (0..self.event_threads)
            .map(|i| {
                let sh = shared.clone();
                std::thread::Builder::new()
                    .name(format!("serve-event-{i}"))
                    .spawn(move || event::run_loop(&sh))
                    .expect("spawn event loop")
            })
            .collect();
        let mut result = Ok(());
        for h in loops {
            match h.join() {
                Ok(Err(e)) if result.is_ok() => result = Err(e),
                _ => {}
            }
        }
        self.daemon.begin_drain();
        for w in self.workers {
            let _ = w.join();
        }
        result
    }

    /// The thread-per-connection baseline front end.
    fn run_threaded(self) -> io::Result<()> {
        let open = Arc::new(AtomicU64::new(0));
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if signals::requested() || self.daemon.is_draining() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    bump(&self.daemon.metrics.connections_accepted);
                    if open.load(Ordering::Relaxed) >= self.max_connections as u64 {
                        bump(&self.daemon.metrics.http_429_or_503);
                        let _ = configure_stream(&stream);
                        let mut stream = stream;
                        let _ = Response::error(503, "connection limit reached")
                            .with_header("retry-after", "1")
                            .write_to(&mut stream);
                        continue;
                    }
                    open.fetch_add(1, Ordering::Relaxed);
                    self.daemon
                        .metrics
                        .connections_open
                        .fetch_add(1, Ordering::Relaxed);
                    conns.retain(|h| !h.is_finished());
                    let d = self.daemon.clone();
                    let open = open.clone();
                    conns.push(
                        std::thread::Builder::new()
                            .name("serve-conn".to_string())
                            .spawn(move || {
                                handle_connection(&d, stream);
                                open.fetch_sub(1, Ordering::Relaxed);
                                d.metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
                            })
                            .expect("spawn connection handler"),
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.daemon.begin_drain();
        // Join in-flight connection handlers too (they are bounded by
        // the per-connection read and write timeouts): otherwise the
        // process can exit while the `/shutdown` handler is still
        // writing its 202 and the client sees a reset connection.
        let drain_started = Instant::now();
        for c in conns {
            let _ = c.join();
        }
        let drained_in = drain_started.elapsed();
        // A handler that outlives read+write timeout (plus slack) means
        // some socket path lost its timeout — exactly the class of bug
        // the missing set_write_timeout was.
        debug_assert!(
            drained_in <= IO_TIMEOUT * 2 + DRAIN_SLACK,
            "connection drain took {drained_in:?}; a handler is unbounded"
        );
        for w in self.workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Response accounting shared by both engines: every routed request
/// counts, and 429/503 responses feed the backpressure counter the
/// bomber reconciles against.
fn note_response(daemon: &Daemon, response: &Response) {
    bump(&daemon.metrics.http_requests);
    if response.status == 429 || response.status == 503 {
        bump(&daemon.metrics.http_429_or_503);
    }
}

fn handle_connection(daemon: &Arc<Daemon>, stream: TcpStream) {
    if configure_stream(&stream).is_err() {
        return;
    }
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let response = match read_request(&mut reader) {
        Ok(Some(req)) => {
            let resp = route(daemon, &req);
            note_response(daemon, &resp);
            resp
        }
        Ok(None) => return,
        Err(e) => Response::error(400, &format!("bad request: {e}")),
    };
    let mut stream = stream;
    let _ = response.write_to(&mut stream);
}

/// The epoll event loop: nonblocking accept, per-connection
/// read/parse/route/flush state machines, deadline sweeps, and a
/// bounded drain flush.
#[cfg(unix)]
mod event {
    use super::*;
    use crate::http::{parse_request, MAX_REQUEST_BYTES};
    use crate::poll::{Interest, Poller};
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;

    /// Token reserved for the shared listener in every loop.
    const LISTENER_TOKEN: u64 = u64::MAX;

    /// Deadline sweep cadence.
    const SWEEP_INTERVAL: Duration = Duration::from_millis(250);

    /// Read chunk size.
    const READ_CHUNK: usize = 16 * 1024;

    /// Capacity above which drained buffers are shrunk back, so one
    /// burst cannot pin a connection's memory forever.
    const SHRINK_ABOVE: usize = 1 << 20;

    /// State shared by every event loop.
    pub(super) struct Shared {
        pub daemon: Arc<Daemon>,
        pub listener: TcpListener,
        /// Admitted connections across all loops (the max-connections
        /// ceiling is global, not per loop).
        pub open: AtomicU64,
        pub max_connections: u64,
    }

    /// One admitted connection's state machine.
    struct Conn {
        stream: TcpStream,
        /// Unparsed request bytes.
        buf: Vec<u8>,
        /// Rendered-but-unflushed response bytes.
        out: Vec<u8>,
        out_pos: usize,
        /// Last read or write progress (deadline sweeps key off it).
        last_activity: Instant,
        /// Requests served on this connection.
        served: u64,
        /// Stop reading; close once `out` is flushed.
        close_after_flush: bool,
        /// Current poller interest includes OUT.
        want_write: bool,
        /// Unrecoverable; close without flushing.
        dead: bool,
    }

    impl Conn {
        fn pending_out(&self) -> bool {
            self.out_pos < self.out.len()
        }
    }

    pub(super) fn run_loop(shared: &Shared) -> io::Result<()> {
        EventLoop {
            shared,
            poller: Poller::new()?,
            conns: Vec::new(),
            free: Vec::new(),
            pending_free: Vec::new(),
        }
        .run()
    }

    struct EventLoop<'a> {
        shared: &'a Shared,
        poller: Poller,
        conns: Vec<Option<Conn>>,
        free: Vec<usize>,
        /// Slots freed during the current event batch; only recycled
        /// once the batch ends so a stale event cannot hit a new
        /// connection that reused the token.
        pending_free: Vec<usize>,
    }

    impl EventLoop<'_> {
        fn run(mut self) -> io::Result<()> {
            self.poller.add(
                self.shared.listener.as_raw_fd(),
                LISTENER_TOKEN,
                Interest::READ,
            )?;
            let mut events = Vec::new();
            let mut last_sweep = Instant::now();
            loop {
                if signals::requested() || self.shared.daemon.is_draining() {
                    break;
                }
                self.poller
                    .wait(&mut events, POLL_INTERVAL.as_millis() as i32)?;
                for ev in &events {
                    if ev.token == LISTENER_TOKEN {
                        self.accept_burst()?;
                    } else {
                        self.handle_conn_event(
                            ev.token as usize,
                            ev.readable || ev.hangup,
                            ev.writable,
                        );
                    }
                }
                self.free.append(&mut self.pending_free);
                if last_sweep.elapsed() >= SWEEP_INTERVAL {
                    self.sweep_deadlines();
                    self.free.append(&mut self.pending_free);
                    last_sweep = Instant::now();
                }
            }

            // Drain: stop accepting and reading, give pending
            // responses a bounded window to flush, then close all.
            self.shared.daemon.begin_drain();
            let drain_started = Instant::now();
            let deadline = drain_started + DRAIN_FLUSH;
            while Instant::now() < deadline
                && self
                    .conns
                    .iter()
                    .any(|c| c.as_ref().map(Conn::pending_out).unwrap_or(false))
            {
                self.poller.wait(&mut events, 25)?;
                for slot in 0..self.conns.len() {
                    let Some(mut conn) = self.conns[slot].take() else {
                        continue;
                    };
                    if conn.pending_out() {
                        self.flush(&mut conn);
                    }
                    if conn.dead || !conn.pending_out() {
                        self.finish_close(conn);
                    } else {
                        self.conns[slot] = Some(conn);
                    }
                }
            }
            for slot in 0..self.conns.len() {
                if let Some(conn) = self.conns[slot].take() {
                    self.finish_close(conn);
                }
            }
            let drained_in = drain_started.elapsed();
            // The flush window above is the only unbounded-looking
            // loop; if the drain overran it, a deadline was lost.
            debug_assert!(
                drained_in <= DRAIN_FLUSH + DRAIN_SLACK,
                "event-loop drain took {drained_in:?}; a loop is unbounded"
            );
            Ok(())
        }

        /// Accepts until the listener would block. Over the global
        /// ceiling, the socket still gets a one-shot best-effort 503
        /// so the client sees a diagnosable rejection rather than a
        /// silent reset.
        fn accept_burst(&mut self) -> io::Result<()> {
            loop {
                match self.shared.listener.accept() {
                    Ok((stream, _)) => {
                        bump(&self.shared.daemon.metrics.connections_accepted);
                        let _ = stream.set_nodelay(true);
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let prev = self.shared.open.fetch_add(1, Ordering::Relaxed);
                        if prev >= self.shared.max_connections {
                            self.shared.open.fetch_sub(1, Ordering::Relaxed);
                            bump(&self.shared.daemon.metrics.http_429_or_503);
                            let mut stream = stream;
                            let _ = stream.write(
                                &Response::error(503, "connection limit reached")
                                    .with_header("retry-after", "1")
                                    .render(false),
                            );
                            continue;
                        }
                        self.shared
                            .daemon
                            .metrics
                            .connections_open
                            .fetch_add(1, Ordering::Relaxed);
                        let slot = self.free.pop().unwrap_or_else(|| {
                            self.conns.push(None);
                            self.conns.len() - 1
                        });
                        let fd = stream.as_raw_fd();
                        let conn = Conn {
                            stream,
                            buf: Vec::new(),
                            out: Vec::new(),
                            out_pos: 0,
                            last_activity: Instant::now(),
                            served: 0,
                            close_after_flush: false,
                            want_write: false,
                            dead: false,
                        };
                        if self.poller.add(fd, slot as u64, Interest::READ).is_err() {
                            self.shared.open.fetch_sub(1, Ordering::Relaxed);
                            self.shared
                                .daemon
                                .metrics
                                .connections_open
                                .fetch_sub(1, Ordering::Relaxed);
                            self.free.push(slot);
                            continue;
                        }
                        self.conns[slot] = Some(conn);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
        }

        /// Drives one connection through read → parse/route → flush.
        fn handle_conn_event(&mut self, slot: usize, readable: bool, _writable: bool) {
            let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) else {
                return; // stale event for a closed slot
            };
            if readable && !conn.close_after_flush && !conn.dead {
                self.read_into(&mut conn);
                if !conn.dead {
                    self.process_buffer(&mut conn);
                }
            }
            if !conn.dead {
                self.flush(&mut conn);
            }
            self.settle(slot, conn);
        }

        /// Puts a connection back (updating poller interest) or closes
        /// it, depending on where the state machine landed.
        fn settle(&mut self, slot: usize, conn: Conn) {
            if conn.dead || (conn.close_after_flush && !conn.pending_out()) {
                self.pending_free.push(slot);
                self.finish_close(conn);
                return;
            }
            let want = conn.pending_out();
            if want != conn.want_write {
                let interest = if want {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                if self
                    .poller
                    .modify(conn.stream.as_raw_fd(), slot as u64, interest)
                    .is_err()
                {
                    self.pending_free.push(slot);
                    self.finish_close(conn);
                    return;
                }
            }
            let mut conn = conn;
            conn.want_write = want;
            self.conns[slot] = Some(conn);
        }

        /// Nonblocking read until WouldBlock/EOF, appending to the
        /// parse buffer.
        fn read_into(&mut self, conn: &mut Conn) {
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        // EOF: a partial request is an error; a clean
                        // close just retires the connection once any
                        // pending response is out.
                        if !conn.buf.is_empty() {
                            self.queue_error(conn, 400, "connection closed inside request");
                        }
                        conn.close_after_flush = true;
                        return;
                    }
                    Ok(n) => {
                        conn.buf.extend_from_slice(&chunk[..n]);
                        conn.last_activity = Instant::now();
                        if conn.buf.len() > MAX_REQUEST_BYTES {
                            // Unreachable past the parser's own caps;
                            // belt-and-braces bound on buffered bytes.
                            self.queue_error(conn, 400, "request too large");
                            return;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.dead = true;
                        return;
                    }
                }
            }
        }

        /// Parses and routes every complete request buffered so far
        /// (pipelining), appending responses in arrival order.
        fn process_buffer(&mut self, conn: &mut Conn) {
            while !conn.close_after_flush {
                match parse_request(&conn.buf) {
                    Ok(Some((req, consumed))) => {
                        conn.buf.drain(..consumed);
                        conn.served += 1;
                        if conn.served > 1 {
                            bump(&self.shared.daemon.metrics.keepalive_reuses);
                        }
                        let response = route(&self.shared.daemon, &req);
                        note_response(&self.shared.daemon, &response);
                        // Draining closes too: the flush phase only
                        // writes, so promising keep-alive would dangle.
                        let close = req.wants_close() || self.shared.daemon.is_draining();
                        conn.out.extend_from_slice(&response.render(!close));
                        if close {
                            conn.close_after_flush = true;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        self.queue_error(conn, 400, &format!("bad request: {e}"));
                        break;
                    }
                }
            }
        }

        /// Appends an error response and marks the connection for
        /// close (a parse failure poisons the byte stream: nothing
        /// after it can be framed reliably).
        fn queue_error(&mut self, conn: &mut Conn, status: u16, msg: &str) {
            let response = Response::error(status, msg);
            note_response(&self.shared.daemon, &response);
            conn.out.extend_from_slice(&response.render(false));
            conn.buf.clear();
            conn.close_after_flush = true;
        }

        /// Nonblocking write until done or WouldBlock.
        fn flush(&mut self, conn: &mut Conn) {
            while conn.pending_out() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        conn.dead = true;
                        return;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.dead = true;
                        return;
                    }
                }
            }
            conn.out.clear();
            conn.out_pos = 0;
            if conn.out.capacity() > SHRINK_ABOVE {
                conn.out.shrink_to(READ_CHUNK);
            }
            if conn.buf.capacity() > SHRINK_ABOVE && conn.buf.is_empty() {
                conn.buf.shrink_to(READ_CHUNK);
            }
        }

        /// Closes connections that blew their deadline: IO_TIMEOUT
        /// with a request or response in flight, IDLE_TIMEOUT for
        /// idle keep-alive sockets.
        fn sweep_deadlines(&mut self) {
            for slot in 0..self.conns.len() {
                let expired = match &self.conns[slot] {
                    Some(conn) => {
                        let limit = if conn.pending_out() {
                            IO_TIMEOUT
                        } else if !conn.buf.is_empty() {
                            IO_TIMEOUT
                        } else {
                            IDLE_TIMEOUT
                        };
                        conn.last_activity.elapsed() > limit
                    }
                    None => false,
                };
                if expired {
                    if let Some(conn) = self.conns[slot].take() {
                        self.pending_free.push(slot);
                        self.finish_close(conn);
                    }
                }
            }
        }

        /// Deregisters and drops one connection, releasing its
        /// admission slot.
        fn finish_close(&mut self, conn: Conn) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            self.shared.open.fetch_sub(1, Ordering::Relaxed);
            self.shared
                .daemon
                .metrics
                .connections_open
                .fetch_sub(1, Ordering::Relaxed);
            // conn (and its socket) drops here.
        }
    }
}

/// Dispatches one request to its handler.
fn route(daemon: &Arc<Daemon>, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => submit(daemon, &req.body),
        ("GET", ["jobs"]) => Response::json(200, &daemon.job_views()),
        ("GET", ["jobs", id]) => with_id(id, |id| job_status(daemon, id)),
        ("GET", ["jobs", id, "report"]) => with_id(id, |id| job_report(daemon, id)),
        ("GET", ["jobs", id, "timeseries"]) => with_id(id, |id| job_timeseries(daemon, id)),
        ("DELETE", ["jobs", id]) => with_id(id, |id| cancel(daemon, id)),
        ("POST", ["sweeps"]) => submit_sweep(daemon, &req.body),
        ("GET", ["sweeps", id]) => with_id(id, |id| sweep_status(daemon, id)),
        ("GET", ["metrics"]) => Response::raw(
            200,
            "text/plain; version=0.0.4",
            daemon.render_metrics().into_bytes(),
        ),
        ("GET", ["healthz"]) => Response::json(
            200,
            &serde_json::json!({ "ok": true, "draining": daemon.is_draining() }),
        ),
        ("POST", ["shutdown"]) => {
            // The front end polls the signal flag; setting it (not
            // just the daemon drain state) also stops `run`.
            signals::request();
            daemon.begin_drain();
            Response::json(202, &serde_json::json!({ "draining": true }))
        }
        ("GET" | "POST" | "DELETE", _) => Response::error(404, "no such endpoint"),
        _ => Response::error(405, "method not allowed"),
    }
}

fn with_id(raw: &str, f: impl FnOnce(u64) -> Response) -> Response {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => Response::error(400, "job id must be an integer"),
    }
}

fn submit(daemon: &Arc<Daemon>, body: &[u8]) -> Response {
    let req: JobRequest = match serde_json::from_slice(body) {
        Ok(r) => r,
        Err(e) => return Response::error(400, &format!("invalid job request: {e}")),
    };
    let resolved = match resolve(&req) {
        Ok(r) => r,
        Err(msg) => return Response::error(400, &msg),
    };
    match daemon.submit(resolved) {
        Submitted::Accepted(view) => Response::json(202, &view),
        Submitted::Busy { retry_after_s } => {
            Response::error(503, "queue full or draining; retry later")
                .with_header("retry-after", &retry_after_s.to_string())
        }
    }
}

/// `POST /sweeps`: expand the grid, resolve every cell (naming the
/// offending cell on failure), then fan out through the daemon.
fn submit_sweep(daemon: &Arc<Daemon>, body: &[u8]) -> Response {
    let req: SweepRequest = match serde_json::from_slice(body) {
        Ok(r) => r,
        Err(e) => return Response::error(400, &format!("invalid sweep request: {e}")),
    };
    let cells = match req.expand() {
        Ok(c) => c,
        Err(msg) => return Response::error(400, &msg),
    };
    let mut resolved = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        match resolve(cell) {
            Ok(r) => resolved.push(r),
            Err(msg) => return Response::error(400, &format!("sweep cell {i}: {msg}")),
        }
    }
    match daemon.submit_sweep(resolved) {
        Ok(view) => Response::json(202, &view),
        Err(retry_after_s) => Response::error(503, "queue full or draining; retry later")
            .with_header("retry-after", &retry_after_s.to_string()),
    }
}

fn sweep_status(daemon: &Arc<Daemon>, id: u64) -> Response {
    match daemon.sweep_view(id) {
        Some(view) => Response::json(200, &view),
        None => Response::error(404, "no such sweep"),
    }
}

fn job_status(daemon: &Arc<Daemon>, id: u64) -> Response {
    match daemon.job_view(id) {
        Some(view) => Response::json(200, &view),
        // Sweeps share the job id space; `GET /jobs/{id}` on a sweep id
        // falls through to its roll-up so clients can poll one URL.
        None => match daemon.sweep_view(id) {
            Some(view) => Response::json(200, &view),
            None => Response::error(404, "no such job"),
        },
    }
}

fn job_report(daemon: &Arc<Daemon>, id: u64) -> Response {
    let Some(view) = daemon.job_view(id) else {
        return Response::error(404, "no such job");
    };
    match daemon.job_report(id) {
        Some(report) => Response::json(
            200,
            &Saved {
                schema: "run_report".to_string(),
                schema_version: SCHEMA_VERSION,
                data: &*report,
            },
        ),
        None => Response::error(409, &format!("job is {:?}, no report yet", view.status)),
    }
}

fn job_timeseries(daemon: &Arc<Daemon>, id: u64) -> Response {
    let Some(report) = daemon.job_report(id) else {
        return Response::error(404, "no completed report for this job");
    };
    let Some(series) = &report.timeseries else {
        return Response::error(
            409,
            "job ran without epoch_cycles; no time series was recorded",
        );
    };
    let mut body = Vec::new();
    if let Err(e) = series.write_jsonl(&mut body) {
        return Response::error(500, &format!("serializing time series failed: {e}"));
    }
    Response::raw(200, "application/jsonl", body)
}

fn cancel(daemon: &Arc<Daemon>, id: u64) -> Response {
    match daemon.cancel(id) {
        Ok(view) => Response::json(200, &view),
        Err(None) => Response::error(404, "no such job"),
        Err(Some(reason)) => Response::error(409, &reason),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn configure_stream_bounds_both_directions() {
        // The write-timeout half of this pair was missing once: a
        // stalled reader could wedge a connection thread forever inside
        // `Response::write_to`. Pin both directions.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        configure_stream(&server_side).unwrap();
        assert_eq!(server_side.read_timeout().unwrap(), Some(IO_TIMEOUT));
        assert_eq!(server_side.write_timeout().unwrap(), Some(IO_TIMEOUT));
        drop(client);
    }

    #[test]
    fn engine_parses_and_defaults_sanely() {
        assert_eq!("epoll".parse::<Engine>().unwrap(), Engine::Epoll);
        assert_eq!("Threaded".parse::<Engine>().unwrap(), Engine::Threaded);
        assert!("frobnicate".parse::<Engine>().is_err());
        if cfg!(unix) {
            assert_eq!(Engine::default(), Engine::Epoll);
        }
        let opts = ServeOptions::default();
        assert!(opts.max_connections >= 1);
        assert!(opts.event_threads >= 1);
    }
}
