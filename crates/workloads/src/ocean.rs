//! SPLASH-2 **OCN** — ocean current simulation (514×514-shaped grids).
//!
//! Red-black Gauss–Seidel relaxation over multiple 2D fields plus
//! element-wise coupling updates, iterated. Rows are partitioned across
//! threads. Every field line is revisited each iteration, so the whole
//! footprint carries a uniform medium reuse count that ends in a store
//! (the relaxation update) — exercising γ's last-write invalidation.

use crate::common::{elem, GenConfig, Layout, ThreadTraces, TraceBuilder};
use redcache_types::PhysAddr;

const ELEM: u64 = 8;
const FIELDS: usize = 4;

fn idx(n: usize, x: usize, y: usize) -> u64 {
    (y * n + x) as u64
}

fn relax(b: &mut TraceBuilder, field: PhysAddr, n: usize, colour: usize, threads: usize) {
    for y in 1..n - 1 {
        let t = y % threads;
        if !b.has_budget(t) {
            continue;
        }
        let start = 1 + (y + colour) % 2;
        let mut x = start;
        while x < n - 1 {
            b.load(t, elem(field, idx(n, x, y), ELEM), 4);
            b.load(t, elem(field, idx(n, x - 1, y), ELEM), 1);
            b.load(t, elem(field, idx(n, x + 1, y), ELEM), 1);
            b.load(t, elem(field, idx(n, x, y - 1), ELEM), 1);
            b.load(t, elem(field, idx(n, x, y + 1), ELEM), 1);
            b.store(t, elem(field, idx(n, x, y), ELEM), 3);
            x += 2;
        }
    }
}

fn couple(
    b: &mut TraceBuilder,
    fa: PhysAddr,
    fb: PhysAddr,
    fc: PhysAddr,
    n: usize,
    threads: usize,
) {
    for y in 0..n {
        let t = y % threads;
        if !b.has_budget(t) {
            continue;
        }
        for x in 0..n {
            b.load(t, elem(fa, idx(n, x, y), ELEM), 2);
            b.load(t, elem(fb, idx(n, x, y), ELEM), 1);
            b.store(t, elem(fc, idx(n, x, y), ELEM), 2);
        }
    }
}

pub(crate) fn generate(cfg: &GenConfig) -> ThreadTraces {
    let n = cfg.dim(194);
    let mut layout = Layout::new();
    let fields: Vec<PhysAddr> = (0..FIELDS)
        .map(|_| layout.alloc((n * n) as u64 * ELEM))
        .collect();
    let mut b = TraceBuilder::new(cfg);
    let threads = cfg.threads;

    for _iter in 0..6 {
        for colour in 0..2 {
            relax(&mut b, fields[0], n, colour, threads);
            relax(&mut b, fields[1], n, colour, threads);
        }
        couple(&mut b, fields[0], fields[1], fields[2], n, threads);
        couple(&mut b, fields[1], fields[2], fields[3], n, threads);
        if b.exhausted() {
            break;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcache_cpu::TraceStats;

    #[test]
    fn deterministic() {
        let cfg = GenConfig::tiny();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn iterative_reuse() {
        let cfg = GenConfig::tiny();
        let flat: Vec<_> = generate(&cfg).into_iter().flatten().collect();
        let s = TraceStats::from_trace(&flat);
        let reuse = s.accesses as f64 / s.footprint_lines as f64;
        assert!(
            reuse > 5.0,
            "ocean revisits fields every iteration: {reuse}"
        );
    }
}
