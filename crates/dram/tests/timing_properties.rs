//! Property tests: under arbitrary transaction mixes, the scheduler's
//! emitted command stream never violates the Table I timing constraints.
//!
//! The checker here is written independently of the scheduler: it replays
//! the `IssuedCmd` stream and re-verifies every constraint from scratch,
//! so a bug in the scheduler's bookkeeping cannot hide itself.

use proptest::prelude::*;
use redcache_dram::{
    DramConfig, DramSystem, IssuedCmd, IssuedKind, TimingParams, Topology, TxnKind,
};
use redcache_types::{Cycle, PhysAddr};
use std::collections::HashMap;

#[derive(Default, Clone)]
struct BankShadow {
    open: bool,
    last_act: Option<Cycle>,
    last_pre: Option<Cycle>,
    last_rd: Option<Cycle>,
    last_wr_data_end: Option<Cycle>,
}

/// Replays a command stream and panics on the first timing violation.
fn check_stream(cmds: &[IssuedCmd], t: &TimingParams) {
    let mut banks: HashMap<(usize, usize, usize), BankShadow> = HashMap::new();
    let mut rank_acts: HashMap<(usize, usize), Vec<Cycle>> = HashMap::new();
    let mut rank_wr_data_end: HashMap<(usize, usize), Cycle> = HashMap::new();
    let mut rank_refreshing: HashMap<(usize, usize), Cycle> = HashMap::new();
    let mut chan_last_col: HashMap<usize, Cycle> = HashMap::new();
    let mut chan_bus_free: HashMap<usize, Cycle> = HashMap::new();

    for c in cmds {
        let bkey = (c.loc.channel, c.loc.rank, c.loc.bank);
        let rkey = (c.loc.channel, c.loc.rank);
        let now = c.cycle;
        assert_eq!(
            now % t.cmd_clock_divisor,
            0,
            "command off the command clock at {now}"
        );
        // No command may land inside a rank's tRFC refresh window. The
        // refresh-forced precharges are emitted before REF in stream
        // order, so they are naturally outside the window.
        if c.kind == IssuedKind::Refresh {
            let until = rank_refreshing.get(&rkey).copied().unwrap_or(0);
            assert!(now >= until, "REF at {now} to a rank already refreshing");
            for ((ch, rk, _), bs) in banks.iter() {
                if (*ch, *rk) == rkey {
                    assert!(!bs.open, "REF at {now} with an open bank in the rank");
                }
            }
            rank_refreshing.insert(rkey, now + t.t_rfc);
            continue;
        }
        let until = rank_refreshing.get(&rkey).copied().unwrap_or(0);
        assert!(
            now >= until,
            "command at {now} inside refresh window (until {until})"
        );
        let b = banks.entry(bkey).or_default();
        match c.kind {
            IssuedKind::Activate => {
                assert!(!b.open, "ACT to open bank at {now}");
                if let Some(a) = b.last_act {
                    assert!(now >= a + t.t_rc, "tRC violated: ACT {now} after ACT {a}");
                }
                if let Some(p) = b.last_pre {
                    assert!(now >= p + t.t_rp, "tRP violated: ACT {now} after PRE {p}");
                }
                let acts = rank_acts.entry(rkey).or_default();
                if let Some(&prev) = acts.last() {
                    assert!(now >= prev + t.t_rrd, "tRRD violated at {now}");
                }
                let in_window = acts.iter().filter(|&&a| a + t.t_faw > now).count();
                assert!(in_window < 4, "tFAW violated at {now}");
                acts.push(now);
                b.open = true;
                b.last_act = Some(now);
            }
            IssuedKind::Precharge => {
                assert!(b.open, "PRE to closed bank at {now}");
                let a = b.last_act.expect("PRE before any ACT");
                assert!(now >= a + t.t_ras, "tRAS violated at {now}");
                if let Some(r) = b.last_rd {
                    assert!(now >= r + t.t_rtp, "tRTP violated at {now}");
                }
                if let Some(w) = b.last_wr_data_end {
                    assert!(now >= w + t.t_wr, "tWR violated at {now}");
                }
                b.open = false;
                b.last_pre = Some(now);
            }
            IssuedKind::Read | IssuedKind::Write => {
                assert!(b.open, "column command to closed bank at {now}");
                let a = b.last_act.expect("column command before ACT");
                assert!(now >= a + t.t_rcd, "tRCD violated at {now}");
                if let Some(&last) = chan_last_col.get(&c.loc.channel) {
                    assert!(now >= last + t.t_ccd, "tCCD violated at {now}");
                }
                chan_last_col.insert(c.loc.channel, now);
                let (start, end) = match c.kind {
                    IssuedKind::Read => (now + t.t_cas, now + t.t_cas + t.t_bl),
                    _ => (now + t.t_cwd, now + t.t_cwd + t.t_bl),
                };
                let free = chan_bus_free.entry(c.loc.channel).or_insert(0);
                assert!(
                    start >= *free,
                    "data bus overlap at {now}: start {start} < free {free}"
                );
                *free = end;
                match c.kind {
                    IssuedKind::Read => {
                        if let Some(&wend) = rank_wr_data_end.get(&rkey) {
                            assert!(now >= wend + t.t_wtr, "tWTR violated at {now}");
                        }
                        b.last_rd = Some(now);
                    }
                    _ => {
                        b.last_wr_data_end = Some(end);
                        rank_wr_data_end.insert(rkey, end);
                    }
                }
            }
            IssuedKind::Refresh => unreachable!("handled above"),
        }
    }
}

fn small_config(wideio: bool) -> DramConfig {
    let base = if wideio {
        DramConfig::wideio_scaled(16 << 20)
    } else {
        DramConfig::ddr4_scaled(64 << 20)
    };
    // Refresh left on: the checker must hold across refresh boundaries
    // too (refresh closes rows; subsequent ACTs re-open them).
    // Runtime audit on: every property doubles as a cross-validation of
    // the TimingAuditor against this file's independent replay checker.
    base.to_builder()
        .refresh_enabled(true)
        .audit(true)
        .build()
        .expect("preset-derived config validates")
}

/// A DDR4-timing configuration with four channels, so channel
/// attribution bugs (commands tagged with the wrong channel) corrupt
/// the per-channel tCCD/bus checks and fail loudly.
fn multi_channel_config() -> DramConfig {
    small_config(false)
        .to_builder()
        .topology(Topology::from_capacity(4, 2, 8, 8192, 64, 64 << 20))
        .build()
        .expect("multi-channel topology validates")
}

fn run_mix(cfg: DramConfig, txns: &[(u64, bool, u8)]) -> (Vec<IssuedCmd>, TimingParams) {
    let timing = cfg.timing;
    let audited = cfg.audit;
    let capacity = cfg.topology.capacity_bytes();
    let mut d = DramSystem::new(cfg);
    d.set_cmd_recording(true);
    let mut now: Cycle = 0;
    let mut queued = 0usize;
    let mut it = txns.iter();
    let mut next = it.next();
    while next.is_some() || d.pending() > 0 {
        // Inject a new transaction every few cycles.
        if now % 8 == 0 {
            if let Some(&(addr, is_write, bursts)) = next {
                let kind = if is_write {
                    TxnKind::Write
                } else {
                    TxnKind::Read
                };
                let b = (bursts % 4) as u32 + 1;
                d.enqueue(PhysAddr::new(addr % capacity), kind, queued as u64, b, now);
                queued += 1;
                next = it.next();
            }
        }
        d.tick(now);
        now += 1;
        assert!(now < 50_000_000, "scheduler deadlock");
    }
    if audited {
        let a = d.audit_stats().expect("audit enabled");
        assert!(
            a.clean(),
            "runtime auditor disagrees with the replay checker: {} violations, first {:?}",
            a.violations,
            a.first_violation
        );
        assert_eq!(d.stats().audit_violations, 0);
    }
    (d.take_issued_cmds(), timing)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ddr4_command_stream_is_legal(
        txns in prop::collection::vec((any::<u64>(), any::<bool>(), any::<u8>()), 1..120)
    ) {
        let (cmds, t) = run_mix(small_config(false), &txns);
        check_stream(&cmds, &t);
    }

    #[test]
    fn wideio_command_stream_is_legal(
        txns in prop::collection::vec((any::<u64>(), any::<bool>(), any::<u8>()), 1..120)
    ) {
        let (cmds, t) = run_mix(small_config(true), &txns);
        check_stream(&cmds, &t);
    }

    #[test]
    fn hot_row_stress_is_legal(
        rows in prop::collection::vec(0u64..4, 1..200),
        writes in prop::collection::vec(any::<bool>(), 1..200)
    ) {
        // Hammer a handful of rows to maximise row-hit scheduling and
        // read/write interleaving on the same banks.
        let txns: Vec<(u64, bool, u8)> = rows
            .iter()
            .zip(writes.iter().cycle())
            .map(|(&r, &w)| (r * 1024 * 1024, w, 0))
            .collect();
        let (cmds, t) = run_mix(small_config(false), &txns);
        check_stream(&cmds, &t);
    }

    #[test]
    fn all_transactions_complete_exactly_once(
        txns in prop::collection::vec((any::<u64>(), any::<bool>()), 1..100)
    ) {
        let cfg = small_config(false);
        let capacity = cfg.topology.capacity_bytes();
        let mut d = DramSystem::new(cfg);
        let mut now = 0;
        for (i, &(addr, w)) in txns.iter().enumerate() {
            let kind = if w { TxnKind::Write } else { TxnKind::Read };
            d.enqueue(PhysAddr::new(addr % capacity), kind, i as u64, 1, now);
            d.tick(now);
            now += 1;
        }
        while d.pending() > 0 {
            d.tick(now);
            now += 1;
            prop_assert!(now < 50_000_000);
        }
        let done = d.drain_completions();
        prop_assert_eq!(done.len(), txns.len());
        let mut metas: Vec<u64> = done.iter().map(|c| c.meta).collect();
        metas.sort_unstable();
        let expect: Vec<u64> = (0..txns.len() as u64).collect();
        prop_assert_eq!(metas, expect);
        // Completion timestamps never precede enqueue order by more than
        // the pipeline allows (sanity: all strictly positive).
        prop_assert!(done.iter().all(|c| c.done_at > 0));
    }
}

/// Deterministic replay of the shrunken failure case checked into
/// `timing_properties.proptest-regressions`. The proptest runner replays
/// that seed through the RNG, which is sensitive to strategy changes;
/// this test pins the exact shrunken transaction mix verbatim so the
/// historical failure stays covered even if the strategies evolve.
#[test]
fn regression_seed_replays_clean() {
    const SEED_TXNS: [(u64, bool, u8); 100] = [
        (3421527881872869776, true, 43),
        (5911896574355304760, true, 219),
        (15575238159561347043, true, 102),
        (13285221057439491152, false, 163),
        (16304760475176611573, false, 254),
        (9512711805335671659, true, 135),
        (11591169208965952586, true, 4),
        (101615201663310777, true, 92),
        (18401162023938887485, true, 206),
        (8669770081069379626, false, 96),
        (13456138453892338706, false, 135),
        (8866108754132752854, true, 132),
        (8579692609156526068, false, 134),
        (806402800028910018, false, 254),
        (9958102452384119968, true, 42),
        (10832733478766149253, true, 144),
        (13528501312037570966, true, 110),
        (4600434042210209671, true, 57),
        (3073476364164708137, true, 111),
        (13850734319839029032, true, 149),
        (13514779440260877987, true, 189),
        (9444729357892282446, false, 14),
        (3449180842693600733, false, 1),
        (14146130720837175750, true, 103),
        (16172987260254158436, true, 17),
        (685951462987504825, false, 175),
        (4215560755892380956, false, 229),
        (3481364551261212411, false, 111),
        (10710020149271628700, false, 254),
        (3362633110275829990, true, 47),
        (11056117604711414465, false, 158),
        (15826023834810902789, false, 223),
        (16702644434422295714, true, 6),
        (11422016640324279765, true, 27),
        (12478136847579622984, false, 200),
        (7046706276242757206, false, 185),
        (18011694902586890493, false, 236),
        (14667040285566650638, true, 185),
        (14133835935384156204, false, 203),
        (11282538624983213831, true, 241),
        (17211649094717078279, false, 133),
        (9309375407156156510, true, 85),
        (9996999684300345636, true, 26),
        (20126706902101729, false, 187),
        (362700578603806746, true, 16),
        (17216376396538195426, false, 53),
        (14897845418217802864, false, 26),
        (14828601955907374455, false, 87),
        (10533387018348900508, true, 190),
        (11984016800300291786, false, 132),
        (10968136801389348129, false, 93),
        (7611169625714813419, false, 233),
        (16674871556005724472, false, 69),
        (3798911631701136270, true, 84),
        (1344979876501485426, true, 32),
        (9606938795700906714, false, 164),
        (7339191258631931710, false, 212),
        (543113202188895879, false, 46),
        (2881307454065498113, false, 189),
        (17915527416019412763, true, 76),
        (2589423655208894504, true, 196),
        (1676520692929262143, false, 213),
        (15395244062415644332, false, 240),
        (5642987906731373585, true, 9),
        (7333118104444911555, false, 195),
        (3066273493199964847, true, 251),
        (7441007336884393395, true, 150),
        (4296966398117978098, true, 254),
        (16771667903273445005, true, 87),
        (1597186525052528746, false, 189),
        (10193439409792333224, true, 71),
        (18159228868664302349, true, 108),
        (3647615397524859393, false, 228),
        (8831280639264159090, true, 192),
        (5852570615876979029, true, 104),
        (1574932103844213247, true, 50),
        (10650696671428635693, false, 66),
        (12859562780622255878, false, 92),
        (17000805457670888588, false, 80),
        (16313886873586377597, true, 235),
        (8782622102422800747, true, 111),
        (11916201468623917585, true, 8),
        (8470835813105630387, false, 123),
        (5256661503258228536, true, 228),
        (7718746097985796648, false, 147),
        (6322418535507001510, true, 133),
        (2201854216583801566, true, 148),
        (821186000618907152, false, 47),
        (11542408888010333266, false, 165),
        (5295227864244317568, true, 252),
        (1565406270776871826, false, 209),
        (11619774934836011758, true, 108),
        (4702584756216942183, true, 28),
        (4477440332378530242, false, 226),
        (2985454911808989828, false, 13),
        (11861565646555931957, true, 20),
        (8897656683368772755, false, 204),
        (5232658652964084189, true, 15),
        (5570520471139665521, false, 8),
        (403428215670555257, false, 61),
    ];
    for wideio in [false, true] {
        let (cmds, t) = run_mix(small_config(wideio), &SEED_TXNS);
        check_stream(&cmds, &t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ddr4_multi_channel_command_stream_is_legal(
        txns in prop::collection::vec((any::<u64>(), any::<bool>(), any::<u8>()), 1..120)
    ) {
        let cfg = multi_channel_config();
        let channels = cfg.topology.channels;
        let capacity = cfg.topology.capacity_bytes();
        // Channel bits sit directly above the burst offset, so the
        // expected channel of each transaction is derivable from its
        // address alone.
        let expected: std::collections::HashSet<usize> = txns
            .iter()
            .map(|&(addr, _, _)| ((addr % capacity) as usize / 64) % channels)
            .collect();
        let (cmds, t) = run_mix(cfg, &txns);
        check_stream(&cmds, &t);
        let mut col_channels = std::collections::HashSet::new();
        for c in &cmds {
            prop_assert!(c.loc.channel < channels, "channel {} out of range", c.loc.channel);
            if matches!(c.kind, IssuedKind::Read | IssuedKind::Write) {
                col_channels.insert(c.loc.channel);
            }
        }
        // Every channel the address map routes to must see at least one
        // column command, and no column command may appear on a channel
        // no transaction was routed to (refresh fires everywhere, so it
        // is excluded from the attribution check).
        prop_assert_eq!(&col_channels, &expected,
            "column-command channels disagree with the address map");
    }
}
