//! Shadow memory: end-to-end functional verification below the L3.
//!
//! Every payload is a monotonically increasing version stamp. The
//! shadow records, per line, the version most recently written *into
//! the memory subsystem* (an L3 dirty eviction). Because controllers
//! make functional decisions at submit time (DESIGN.md §3.3), a read
//! submitted at time t must return exactly the version the shadow held
//! at t — any bypass/invalidate/fill bug that serves stale data trips
//! the checker immediately.

use redcache_types::LineAddr;
use std::collections::HashMap;

/// The shadow memory and its expectation table for in-flight reads.
#[derive(Debug, Clone, Default)]
pub struct ShadowMemory {
    versions: HashMap<u64, u64>,
    expectations: HashMap<u64, u64>, // req id -> expected version
    violations: u64,
    checks: u64,
}

// Warm snapshots carry the shadow so resumed runs keep end-to-end
// version checking across the fork (DESIGN.md §3.13).
redcache_types::wire_struct!(ShadowMemory {
    versions,
    expectations,
    violations,
    checks,
});

impl ShadowMemory {
    /// Creates an empty shadow (all lines at version 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a writeback of `version` to `line` (call at submit).
    pub fn on_writeback(&mut self, line: LineAddr, version: u64) {
        self.versions.insert(line.raw(), version);
    }

    /// Registers the expectation for a read request (call at submit).
    pub fn on_read_submit(&mut self, req_id: u64, line: LineAddr) {
        let expect = self.versions.get(&line.raw()).copied().unwrap_or(0);
        self.expectations.insert(req_id, expect);
    }

    /// Checks a completed read. Returns `true` when the observed
    /// version matches the expectation registered at submit.
    pub fn on_read_complete(&mut self, req_id: u64, observed: u64) -> bool {
        self.checks += 1;
        match self.expectations.remove(&req_id) {
            Some(expect) if expect == observed => true,
            Some(_) => {
                self.violations += 1;
                false
            }
            None => {
                // Unknown request: count as a violation — the harness
                // must register every read.
                self.violations += 1;
                false
            }
        }
    }

    /// Number of failed checks.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Number of reads checked.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn checks(&self) -> u64 {
        self.checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_last_writeback_at_submit_time() {
        let mut s = ShadowMemory::new();
        s.on_writeback(LineAddr::new(1), 10);
        s.on_read_submit(100, LineAddr::new(1));
        // A later writeback must not change the expectation for the
        // already-submitted read.
        s.on_writeback(LineAddr::new(1), 20);
        assert!(s.on_read_complete(100, 10));
        s.on_read_submit(101, LineAddr::new(1));
        assert!(s.on_read_complete(101, 20));
        assert_eq!(s.violations(), 0);
        assert_eq!(s.checks(), 2);
    }

    #[test]
    fn detects_stale_reads() {
        let mut s = ShadowMemory::new();
        s.on_writeback(LineAddr::new(2), 5);
        s.on_read_submit(1, LineAddr::new(2));
        assert!(!s.on_read_complete(1, 0));
        assert_eq!(s.violations(), 1);
    }

    #[test]
    fn never_written_lines_expect_zero() {
        let mut s = ShadowMemory::new();
        s.on_read_submit(1, LineAddr::new(9));
        assert!(s.on_read_complete(1, 0));
    }

    #[test]
    fn unregistered_read_is_a_violation() {
        let mut s = ShadowMemory::new();
        assert!(!s.on_read_complete(7, 0));
    }
}
