//! FR-FCFS command scheduling for one channel, driven by the indexed
//! queue of [`crate::queue`] (DESIGN.md §3.8).
//!
//! Each command slot (one per DRAM command cycle), the scheduler:
//!
//! 1. starts any due per-rank refresh whose banks are quiescent,
//! 2. issues the column command of the oldest *row-hit* transaction that
//!    is legal right now (first-ready), else
//! 3. issues the next preparatory command (PRE or ACT) for the oldest
//!    transaction that can make progress (FCFS).
//!
//! Both passes visit only banks with in-window work
//! ([`TxnQueue::active_banks`]) instead of rescanning the window:
//! column legality and preparatory legality factor into channel-, rank-
//! and bank-level thresholds that are uniform for every transaction of
//! a bank (given its row-hit/conflict class), so the oldest candidate
//! per bank plus a min-`seq` reduction across banks picks exactly the
//! transaction the original arrival-order window scan picked. The
//! per-bank row-hit counters answer "does this open row still have
//! pending work" in O(1) — the query the retired
//! `row_has_pending_hits` window rescan used to answer.
//!
//! Legality enforces the full Table I constraint set; data-bus occupancy
//! and the write→read tWTR turnaround give the asymmetric read/write
//! costs that RedCache's RCU manager is designed around.
//!
//! The pre-rewrite linear-scan kernel is preserved verbatim in
//! [`crate::reference`]; `tests/indexed_vs_reference.rs` drives both
//! through random traffic and asserts identical commands, cycles,
//! horizons and statistics every slot.

use crate::bank::Rank;
use crate::channel::Channel;
use crate::queue::NIL;
use crate::stats::DramStats;
use crate::system::{IssuedCmd, IssuedKind, TxnKind};
use crate::timing::TimingParams;
use crate::topology::DramLoc;
use redcache_types::Cycle;

/// Outcome of one scheduling slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotOutcome {
    /// No command issued.
    Idle,
    /// A command was issued.
    Issued(IssuedKind),
}

/// Write-drain watermarks (virtual-write-queue behaviour, paper ref
/// [13]): reads have priority; writes are batched once this many are
/// queued and drained down to the low mark, amortising the read↔write
/// bus turnaround.
pub(crate) const WRITE_DRAIN_HIGH: usize = 12;
pub(crate) const WRITE_DRAIN_LOW: usize = 2;

pub(crate) fn rank_refresh_due(rank: &Rank, now: Cycle) -> bool {
    now >= rank.next_refresh && !rank.is_refreshing(now)
}

/// Attempts to begin refresh on due ranks. A refresh waits until every
/// bank in the rank can be precharged (no write recovery pending) and no
/// read data is still owed from the rank — the per-rank in-flight
/// counter ([`Channel::rank_inflight`]) answers the latter in O(1)
/// where the old kernel rescanned the whole queue. `chan_idx` is the
/// index of `ch` within the system, so every emitted command carries
/// the channel that actually issued it.
pub(crate) fn service_refresh(
    ch: &mut Channel,
    chan_idx: usize,
    t: &TimingParams,
    now: Cycle,
    stats: &mut DramStats,
    issued: &mut Vec<IssuedCmd>,
) {
    let banks_per_rank = ch.banks.first().map_or(0, Vec::len);
    for r in 0..ch.ranks.len() {
        if !rank_refresh_due(&ch.ranks[r], now) {
            continue;
        }
        let quiescent = ch.rank_inflight[r] == 0 && ch.banks[r].iter().all(|b| b.ready_pre <= now);
        if !quiescent {
            continue; // postponed; retried next slot
        }
        // Close all open rows (a PREA before REF, counted as precharges)
        // and block the rank.
        let mut closed = 0;
        for (bi, b) in ch.banks[r].iter_mut().enumerate() {
            if let Some(row) = b.open_row.take() {
                closed += 1;
                ch.q.zero_hits(r * banks_per_rank + bi);
                issued.push(IssuedCmd {
                    kind: IssuedKind::Precharge,
                    loc: DramLoc {
                        channel: chan_idx,
                        rank: r,
                        bank: bi,
                        row,
                        col: 0,
                    },
                    cycle: now,
                });
            }
        }
        issued.push(IssuedCmd {
            kind: IssuedKind::Refresh,
            loc: DramLoc {
                channel: chan_idx,
                rank: r,
                bank: 0,
                row: 0,
                col: 0,
            },
            cycle: now,
        });
        let until = now + t.t_rfc;
        for b in ch.banks[r].iter_mut() {
            b.ready_act = b.ready_act.max(until);
            b.ready_col = b.ready_col.max(until);
            b.ready_pre = b.ready_pre.max(until);
        }
        let rank = &mut ch.ranks[r];
        rank.refreshing_until = until;
        rank.next_refresh += t.t_refi;
        stats.energy.refreshes += 1;
        stats.energy.pres += closed;
    }
}

fn issue_col_cmd(
    ch: &mut Channel,
    t: &TimingParams,
    idx: u32,
    now: Cycle,
    bytes_per_burst: usize,
    stats: &mut DramStats,
) -> IssuedCmd {
    let (kind, loc) = {
        let h = ch.q.hot(idx);
        (h.kind, h.loc)
    };
    let (data_start, issued_kind) = match kind {
        TxnKind::Read => (now + t.t_cas, IssuedKind::Read),
        TxnKind::Write => (now + t.t_cwd, IssuedKind::Write),
    };
    let data_end = data_start + t.t_bl;
    ch.bus_free_at = data_end;
    ch.last_col_cmd = Some(now);
    ch.last_col_kind = Some(kind);
    {
        let bank = ch.bank_mut(&loc);
        match kind {
            TxnKind::Read => bank.ready_pre = bank.ready_pre.max(now + t.t_rtp),
            TxnKind::Write => bank.ready_pre = bank.ready_pre.max(data_end + t.t_wr),
        }
    }
    if kind == TxnKind::Write {
        let rank = &mut ch.ranks[loc.rank];
        rank.ready_read = rank.ready_read.max(data_end + t.t_wtr);
    }
    match kind {
        TxnKind::Read => {
            stats.energy.rd_bursts += 1;
            stats.bytes_read += bytes_per_burst as u64;
        }
        TxnKind::Write => {
            stats.energy.wr_bursts += 1;
            stats.bytes_written += bytes_per_burst as u64;
        }
    }
    stats.col_cmds += 1;
    stats.bus_busy_cycles += t.t_bl;
    let fb = ch.q.flat(&loc);
    let (left, was_started) = ch.q.record_burst(idx, data_end);
    if left == 0 {
        // Final burst: the transaction stops counting as pending row-hit
        // work and (if multi-burst) leaves the in-flight set. It is
        // retired by the system via [`Channel::take_completed`] this
        // same slot.
        ch.q.dec_hit(fb, kind);
        if was_started {
            ch.rank_inflight[loc.rank] -= 1;
        }
        debug_assert!(ch.completed.is_none(), "one completion per slot");
        ch.completed = Some(idx);
    } else if !was_started {
        ch.rank_inflight[loc.rank] += 1;
    }
    IssuedCmd {
        kind: issued_kind,
        loc,
        cycle: now,
    }
}

fn act_legal(ch: &mut Channel, t: &TimingParams, txn_loc: &DramLoc, now: Cycle) -> bool {
    let rank_idx = txn_loc.rank;
    if ch.ranks[rank_idx].is_refreshing(now) || now < ch.ranks[rank_idx].ready_act {
        return false;
    }
    if !ch.ranks[rank_idx].faw_allows_act(now, t.t_faw) {
        return false;
    }
    let bank = ch.bank(txn_loc);
    bank.open_row.is_none() && now >= bank.ready_act
}

fn issue_act(
    ch: &mut Channel,
    t: &TimingParams,
    loc: &DramLoc,
    now: Cycle,
    stats: &mut DramStats,
) -> IssuedCmd {
    {
        let bank = ch.bank_mut(loc);
        bank.open_row = Some(loc.row);
        bank.ready_col = now + t.t_rcd;
        bank.ready_pre = now + t.t_ras;
        bank.ready_act = now + t.t_rc;
    }
    let rank = &mut ch.ranks[loc.rank];
    rank.ready_act = rank.ready_act.max(now + t.t_rrd);
    rank.act_times.push_back(now);
    // The open row changed: rebuild this bank's hit counters from its
    // in-window list (the only O(window) step left, and only on ACT).
    let fb = ch.q.flat(loc);
    ch.q.recount_hits(fb, loc.row);
    stats.energy.acts += 1;
    stats.demand_acts += 1;
    IssuedCmd {
        kind: IssuedKind::Activate,
        loc: *loc,
        cycle: now,
    }
}

fn issue_pre(
    ch: &mut Channel,
    t: &TimingParams,
    loc: &DramLoc,
    now: Cycle,
    stats: &mut DramStats,
) -> IssuedCmd {
    {
        let bank = ch.bank_mut(loc);
        bank.open_row = None;
        bank.ready_act = bank.ready_act.max(now + t.t_rp);
    }
    // Closed row: no transaction can be a row hit any more. (The
    // scheduler only precharges hitless banks, so this is a no-op there,
    // but direct callers keep the invariant through it.)
    let fb = ch.q.flat(loc);
    ch.q.zero_hits(fb);
    stats.energy.pres += 1;
    IssuedCmd {
        kind: IssuedKind::Precharge,
        loc: *loc,
        cycle: now,
    }
}

/// Preparatory command classes of pass 2.
#[derive(Clone, Copy)]
enum Prep {
    Act,
    Pre,
}

/// Runs one command slot on channel `chan_idx`. Any issued commands
/// (including refresh-forced precharges) are appended to `issued`.
pub(crate) fn schedule_slot(
    ch: &mut Channel,
    chan_idx: usize,
    t: &TimingParams,
    now: Cycle,
    bytes_per_burst: usize,
    stats: &mut DramStats,
    issued: &mut Vec<IssuedCmd>,
) -> SlotOutcome {
    service_refresh(ch, chan_idx, t, now, stats, issued);

    // Write-drain hysteresis: enter batching above the high watermark,
    // leave below the low one.
    if ch.pending_writes >= WRITE_DRAIN_HIGH {
        ch.write_drain_mode = true;
    } else if ch.pending_writes <= WRITE_DRAIN_LOW {
        ch.write_drain_mode = false;
    }
    let banks_per_rank = ch.banks.first().map_or(1, Vec::len);

    // Pass 1: oldest legal column command — reads first; writes fall to
    // second priority unless the channel is in write-drain mode. A write
    // still issues whenever no read column is ready this slot (the bus
    // would otherwise idle), which also guarantees forward progress for
    // rows held open by deferred writes.
    //
    // Channel-level gates (tCCD, bus occupancy) are hoisted out of the
    // bank loop; rank/bank-level gates prune whole banks; only banks
    // that could actually issue have their in-window list walked for
    // the oldest hit of each kind. The global pick is the min-seq
    // survivor, which equals the first legal transaction of the old
    // arrival-order scan because column legality is uniform across a
    // bank's row hits of one kind.
    let mut best_read: Option<(u64, u32)> = None;
    let mut best_write: Option<(u64, u32)> = None;
    let tccd_ok = ch.last_col_cmd.is_none_or(|last| now >= last + t.t_ccd);
    if tccd_ok {
        let read_bus_ok = now + t.t_cas >= ch.bus_free_at;
        let write_bus_ok = now + t.t_cwd >= ch.bus_free_at;
        if read_bus_ok || write_bus_ok {
            for &fb in ch.q.active_banks() {
                let fbu = fb as usize;
                let bq = ch.q.bank(fbu);
                if bq.hit_reads == 0 && bq.hit_writes == 0 {
                    continue;
                }
                let (r, b) = (fbu / banks_per_rank, fbu % banks_per_rank);
                let bank = &ch.banks[r][b];
                if now < bank.ready_col {
                    continue;
                }
                let rank = &ch.ranks[r];
                if rank.is_refreshing(now) {
                    continue;
                }
                let open = bank.open_row;
                let mut need_r = bq.hit_reads > 0 && read_bus_ok && now >= rank.ready_read;
                let mut need_w = bq.hit_writes > 0 && write_bus_ok;
                if !need_r && !need_w {
                    continue;
                }
                let mut i = ch.q.bank_head(fbu);
                while i != NIL && (need_r || need_w) {
                    let h = ch.q.hot(i);
                    if h.bursts_left > 0 && open == Some(h.loc.row) {
                        match h.kind {
                            TxnKind::Read if need_r => {
                                if best_read.is_none_or(|(s, _)| h.seq < s) {
                                    best_read = Some((h.seq, i));
                                }
                                need_r = false;
                            }
                            TxnKind::Write if need_w => {
                                if best_write.is_none_or(|(s, _)| h.seq < s) {
                                    best_write = Some((h.seq, i));
                                }
                                need_w = false;
                            }
                            _ => {}
                        }
                    }
                    i = ch.q.bank_next(i);
                }
            }
        }
    }
    let pick = if ch.write_drain_mode {
        best_write.or(best_read)
    } else {
        best_read.or(best_write)
    };
    if let Some((_, idx)) = pick {
        let cmd = issue_col_cmd(ch, t, idx, now, bytes_per_burst, stats);
        issued.push(cmd);
        return SlotOutcome::Issued(cmd.kind);
    }

    // Pass 2: oldest transaction that can take a preparatory step
    // (ACT/PRE do not turn the data bus, so writes may prepare freely).
    // Per bank there is exactly one candidate — its oldest unfinished
    // transaction — because ACT legality is row-independent and PRE
    // legality (conflict, no pending hits, ready_pre reached) is
    // uniform across a bank's conflicts. Min-seq across banks therefore
    // reproduces the old first-legal-in-arrival-order pick.
    let mut best_prep: Option<(u64, u32, Prep)> = None;
    // Indexed loop: `act_legal` needs `&mut Channel` (tFAW pruning),
    // which forbids holding the active-bank slice across it. Legality
    // checks never add or remove active banks, so the index stays valid.
    #[allow(clippy::needless_range_loop)]
    for k in 0..ch.q.active_banks().len() {
        let fbu = ch.q.active_banks()[k] as usize;
        let (r, b) = (fbu / banks_per_rank, fbu % banks_per_rank);
        let open = ch.banks[r][b].open_row;
        let bq = ch.q.bank(fbu);
        if open.is_some() && (bq.hit_reads > 0 || bq.hit_writes > 0) {
            // Open row with pending hits: column work exists (or is
            // merely not legal *yet*); never tear the row down
            // (FR-FCFS fairness).
            continue;
        }
        let mut i = ch.q.bank_head(fbu);
        while i != NIL && ch.q.hot(i).bursts_left == 0 {
            i = ch.q.bank_next(i);
        }
        if i == NIL {
            continue;
        }
        let (seq, loc) = {
            let h = ch.q.hot(i);
            (h.seq, h.loc)
        };
        if best_prep.is_some_and(|(s, _, _)| s <= seq) {
            continue; // an older bank candidate already won
        }
        match open {
            None => {
                if act_legal(ch, t, &loc, now) {
                    best_prep = Some((seq, i, Prep::Act));
                }
            }
            Some(row) if row != loc.row => {
                if now >= ch.banks[r][b].ready_pre {
                    best_prep = Some((seq, i, Prep::Pre));
                }
            }
            Some(_) => {} // hit with zero counter: finished txn, skip
        }
    }
    if let Some((_, idx, prep)) = best_prep {
        let loc = ch.q.hot(idx).loc;
        let cmd = match prep {
            Prep::Act => issue_act(ch, t, &loc, now, stats),
            Prep::Pre => issue_pre(ch, t, &loc, now, stats),
        };
        issued.push(cmd);
        return SlotOutcome::Issued(cmd.kind);
    }
    SlotOutcome::Idle
}

/// Earliest cycle at which the tFAW window admits a new ACT on `rank`
/// (0 when fewer than four ACTs remain in the window at `now`) — the
/// non-mutating twin of [`Rank::faw_allows_act`] for event prediction.
fn faw_earliest(rank: &Rank, t_faw: Cycle, now: Cycle) -> Cycle {
    let valid = rank.act_times.iter().filter(|&&x| x + t_faw > now).count();
    if valid < 4 {
        0
    } else {
        // Valid timestamps form the ascending suffix of `act_times`; the
        // window clears when the oldest of the last four leaves it.
        rank.act_times[rank.act_times.len() - 4] + t_faw
    }
}

/// A lower bound on the next cycle (>= `now`, unaligned) at which this
/// channel's scheduler could issue any command, or `Cycle::MAX` when no
/// event is ever possible from the current state.
///
/// Exactness contract: between two processed slots no channel state
/// mutates (commands and enqueues happen only at processed slots), so
/// every legality threshold consulted by [`schedule_slot`] is frozen and
/// a command first becomes legal exactly when its candidate cycle is
/// reached. Returning a value that is too *early* merely costs an idle
/// processed slot (observably identical to a skipped one); this function
/// must never return a value later than the first issuable slot.
///
/// Candidates are per *bank* rather than per window transaction: every
/// transaction of a bank in the same row-hit/conflict class shares one
/// earliest-legal cycle, and the per-bank hit counters say which
/// classes are populated — so the walk is O(active banks), with no
/// window rescan and no pending-hit bitmap.
pub(crate) fn channel_next_event(
    ch: &Channel,
    t: &TimingParams,
    refresh_enabled: bool,
    now: Cycle,
) -> Cycle {
    // A pending write-drain hysteresis transition latches at the very
    // next scheduling pass and can flip the read/write pick priority,
    // so the horizon must never skip past one: an enqueue could move
    // `pending_writes` back into the hysteresis band before the next
    // processed pass, leaving the flag latched differently than a
    // cycle-by-cycle walk would have left it.
    let latched = if ch.pending_writes >= WRITE_DRAIN_HIGH {
        true
    } else if ch.pending_writes <= WRITE_DRAIN_LOW {
        false
    } else {
        ch.write_drain_mode
    };
    if latched != ch.write_drain_mode {
        return now;
    }
    let mut earliest = Cycle::MAX;
    if refresh_enabled {
        for (r, rank) in ch.ranks.iter().enumerate() {
            let c = if rank_refresh_due(rank, now) {
                // Due but not started: waiting on bank quiescence (write
                // recovery) or an in-flight transaction, whose own
                // candidate below covers the latter case.
                ch.banks[r].iter().map(|b| b.ready_pre).max().unwrap_or(now)
            } else {
                rank.next_refresh
            };
            earliest = earliest.min(c);
            if earliest <= now {
                return now;
            }
        }
    }
    let banks_per_rank = ch.banks.first().map_or(1, Vec::len);
    for &fb in ch.q.active_banks() {
        let fbu = fb as usize;
        let (r, b) = (fbu / banks_per_rank, fbu % banks_per_rank);
        let bank = &ch.banks[r][b];
        let rank = &ch.ranks[r];
        let bq = ch.q.bank(fbu);
        match bank.open_row {
            Some(_) if bq.hit_reads > 0 || bq.hit_writes > 0 => {
                // Column commands: each threshold of the pass-1 gates,
                // inverted into "earliest legal cycle", once per kind
                // present. Conflict transactions in this bank (if any)
                // contribute nothing — the open row still has pending
                // hits, so no PRE can issue for them.
                let mut base = bank.ready_col.max(rank.refreshing_until);
                if let Some(last) = ch.last_col_cmd {
                    base = base.max(last + t.t_ccd);
                }
                if bq.hit_reads > 0 {
                    earliest = earliest.min(
                        base.max(rank.ready_read)
                            .max(ch.bus_free_at.saturating_sub(t.t_cas)),
                    );
                }
                if bq.hit_writes > 0 {
                    earliest = earliest.min(base.max(ch.bus_free_at.saturating_sub(t.t_cwd)));
                }
            }
            Some(_) => {
                // Row conflict, no pending hits: a PRE becomes legal at
                // `ready_pre` (uniform for every conflict of the bank).
                earliest = earliest.min(bank.ready_pre);
            }
            None => {
                earliest = earliest.min(
                    bank.ready_act
                        .max(rank.ready_act)
                        .max(rank.refreshing_until)
                        .max(faw_earliest(rank, t.t_faw, now)),
                );
            }
        }
        if earliest <= now {
            return now;
        }
    }
    earliest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::SCHED_WINDOW;
    use crate::system::TxnId;
    use crate::topology::DramLoc;

    /// Tests schedule on a nonzero channel index so any hardcoded
    /// `channel: 0` attribution regression fails loudly.
    const CH: usize = 1;

    fn mk_channel() -> Channel {
        Channel::new(2, 4, 1_000_000) // refresh far away
    }

    fn t() -> TimingParams {
        TimingParams::ddr4_table1()
    }

    fn push(
        ch: &mut Channel,
        id: u64,
        kind: TxnKind,
        rank: usize,
        bank: usize,
        row: u64,
        now: Cycle,
    ) {
        ch.push(
            TxnId(id),
            kind,
            DramLoc {
                channel: CH,
                rank,
                bank,
                row,
                col: 0,
            },
            1,
            0,
            now,
        );
    }

    /// One slot plus the completion harvest the system would perform.
    fn step(
        ch: &mut Channel,
        timing: &TimingParams,
        now: Cycle,
        stats: &mut DramStats,
        issued: &mut Vec<IssuedCmd>,
    ) -> SlotOutcome {
        let out = schedule_slot(ch, CH, timing, now, 64, stats, issued);
        let _ = ch.take_completed();
        out
    }

    fn run_until_issue(
        ch: &mut Channel,
        timing: &TimingParams,
        from: Cycle,
        stats: &mut DramStats,
    ) -> (Cycle, IssuedCmd) {
        let mut now = from;
        loop {
            let mut issued = Vec::new();
            let _ = step(ch, timing, now, stats, &mut issued);
            if let Some(c) = issued.last() {
                for c in &issued {
                    assert_eq!(c.loc.channel, CH, "command attributed to the wrong channel");
                }
                return (now, *c);
            }
            now += timing.cmd_clock_divisor;
            assert!(now < from + 1_000_000, "no command issued");
        }
    }

    #[test]
    fn closed_bank_gets_act_then_read_after_trcd() {
        let mut ch = mk_channel();
        let timing = t();
        let mut stats = DramStats::default();
        push(&mut ch, 1, TxnKind::Read, 0, 0, 3, 0);
        let (t0, c0) = run_until_issue(&mut ch, &timing, 0, &mut stats);
        assert_eq!(c0.kind, IssuedKind::Activate);
        let (t1, c1) = run_until_issue(&mut ch, &timing, t0 + 2, &mut stats);
        assert_eq!(c1.kind, IssuedKind::Read);
        assert!(
            t1 >= t0 + timing.t_rcd,
            "read at {t1} violates tRCD after ACT at {t0}"
        );
    }

    #[test]
    fn row_conflict_precharges_first() {
        let mut ch = mk_channel();
        let timing = t();
        let mut stats = DramStats::default();
        ch.banks[0][0].open_row = Some(9);
        push(&mut ch, 1, TxnKind::Read, 0, 0, 3, 0);
        let (_, c0) = run_until_issue(&mut ch, &timing, 0, &mut stats);
        assert_eq!(c0.kind, IssuedKind::Precharge);
    }

    #[test]
    fn row_hit_bypasses_older_conflict() {
        // FR-FCFS: a younger row-hit read issues before an older
        // row-conflict read is served.
        let mut ch = mk_channel();
        let timing = t();
        let mut stats = DramStats::default();
        ch.banks[0][0].open_row = Some(5);
        push(&mut ch, 1, TxnKind::Read, 0, 1, 7, 0); // older, closed bank 1
        push(&mut ch, 2, TxnKind::Read, 0, 0, 5, 0); // younger, open-row hit
        let (_, c0) = run_until_issue(&mut ch, &timing, 0, &mut stats);
        assert_eq!(c0.kind, IssuedKind::Read);
        assert_eq!(c0.loc.bank, 0);
    }

    #[test]
    fn oldest_hit_wins_across_banks() {
        // Two banks with legal row hits: FCFS age decides, regardless
        // of active-bank iteration order.
        let mut ch = mk_channel();
        let timing = t();
        let mut stats = DramStats::default();
        ch.banks[0][2].open_row = Some(8);
        ch.banks[0][3].open_row = Some(4);
        push(&mut ch, 1, TxnKind::Read, 0, 3, 4, 0); // older hit, bank 3
        push(&mut ch, 2, TxnKind::Read, 0, 2, 8, 0); // younger hit, bank 2
        let (_, c0) = run_until_issue(&mut ch, &timing, 0, &mut stats);
        assert_eq!(c0.kind, IssuedKind::Read);
        assert_eq!(c0.loc.bank, 3);
    }

    #[test]
    fn write_then_read_same_rank_waits_twtr() {
        let mut ch = mk_channel();
        let timing = t();
        let mut stats = DramStats::default();
        ch.banks[0][0].open_row = Some(1);
        ch.banks[0][1].open_row = Some(1);
        // Write alone in the queue (no read waiting), so it issues…
        push(&mut ch, 1, TxnKind::Write, 0, 0, 1, 0);
        let (tw, cw) = run_until_issue(&mut ch, &timing, 0, &mut stats);
        assert_eq!(cw.kind, IssuedKind::Write);
        // …then a read to the same rank arrives and must honour tWTR.
        push(&mut ch, 2, TxnKind::Read, 0, 1, 1, tw);
        let write_data_end = tw + timing.t_cwd + timing.t_bl;
        let (tr, cr) = run_until_issue(&mut ch, &timing, tw + 2, &mut stats);
        assert_eq!(cr.kind, IssuedKind::Read);
        assert!(
            tr >= write_data_end + timing.t_wtr,
            "read at {tr} violates tWTR (write data ends {write_data_end})"
        );
    }

    #[test]
    fn back_to_back_writes_same_row_cost_tccd() {
        let mut ch = mk_channel();
        let timing = TimingParams::wideio_table1();
        let mut stats = DramStats::default();
        ch.banks[0][0].open_row = Some(1);
        push(&mut ch, 1, TxnKind::Write, 0, 0, 1, 0);
        push(&mut ch, 2, TxnKind::Write, 0, 0, 1, 0);
        let (t0, _) = run_until_issue(&mut ch, &timing, 0, &mut stats);
        let (t1, c1) = run_until_issue(&mut ch, &timing, t0 + 2, &mut stats);
        assert_eq!(c1.kind, IssuedKind::Write);
        assert_eq!(
            t1 - t0,
            timing.t_ccd,
            "same-row write should follow at exactly tCCD"
        );
    }

    #[test]
    fn refresh_blocks_rank_for_trfc() {
        let mut ch = Channel::new(1, 2, 10); // refresh due at cycle 10
        let timing = t();
        let mut stats = DramStats::default();
        push(&mut ch, 1, TxnKind::Read, 0, 0, 3, 0);
        // Advance past the refresh due time with an empty pipeline: the
        // refresh itself is now an observable command.
        let (t_ref, c) = run_until_issue(&mut ch, &timing, 10, &mut stats);
        assert_eq!(c.kind, IssuedKind::Refresh);
        assert_eq!(c.loc.rank, 0);
        let (t_act, c) = run_until_issue(&mut ch, &timing, t_ref + 2, &mut stats);
        assert_eq!(c.kind, IssuedKind::Activate);
        assert!(
            t_act >= t_ref + timing.t_rfc,
            "ACT at {t_act} during refresh"
        );
        assert_eq!(stats.energy.refreshes, 1);
    }

    #[test]
    fn faw_throttles_five_activates() {
        let mut ch = mk_channel();
        let timing = t();
        let mut stats = DramStats::default();
        for b in 0..4 {
            push(&mut ch, b as u64, TxnKind::Read, 0, b, 1, 0);
        }
        // A fifth ACT must wait for the tFAW window even though its bank
        // is free.
        let mut acts = Vec::new();
        let mut now = 0;
        while acts.len() < 4 {
            let mut issued = Vec::new();
            let _ = step(&mut ch, &timing, now, &mut stats, &mut issued);
            for c in issued {
                if c.kind == IssuedKind::Activate {
                    assert_eq!(c.loc.channel, CH);
                    acts.push(now);
                }
            }
            now += timing.cmd_clock_divisor;
        }
        // tRRD spacing between consecutive ACTs.
        for w in acts.windows(2) {
            assert!(w[1] - w[0] >= timing.t_rrd);
        }
        // Verify the tFAW window arithmetic on the rank state directly:
        assert!(!ch.ranks[0].faw_allows_act(acts[3] + 1, timing.t_faw));
        assert!(ch.ranks[0].faw_allows_act(acts[0] + timing.t_faw, timing.t_faw));
    }

    #[test]
    fn window_bounds_the_scheduler_view() {
        // Transaction #SCHED_WINDOW (0-indexed past the boundary) is a
        // legal row hit, but it must not issue while it sits outside the
        // bounded window; the in-window conflict work proceeds instead.
        let mut ch = mk_channel();
        let timing = t();
        let mut stats = DramStats::default();
        ch.banks[0][0].open_row = Some(77);
        for i in 0..SCHED_WINDOW as u64 {
            push(&mut ch, i, TxnKind::Read, 0, 0, 1, 0); // conflicts
        }
        push(&mut ch, 99, TxnKind::Read, 0, 0, 77, 0); // hit, outside
        let (_, c0) = run_until_issue(&mut ch, &timing, 0, &mut stats);
        assert_eq!(
            c0.kind,
            IssuedKind::Precharge,
            "out-of-window hit must not bypass the window bound"
        );
    }
}
