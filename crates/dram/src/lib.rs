//! Cycle-level DRAM model for the RedCache reproduction.
//!
//! Models both DRAM interfaces of the evaluated system (Table I of the
//! paper):
//!
//! * the in-package **WideIO / HBM** DRAM cache — 4 channels × 128 bits,
//!   8 ranks and 16 banks per channel, 1600 MHz DDR4 timing;
//! * the off-chip **DDR4** main memory — 2 channels × 64 bits, 2 ranks
//!   per channel, 8 banks per rank.
//!
//! The model is command-accurate: every read/write transaction is
//! decomposed into `ACT`/`RD`/`WR`/`PRE` commands scheduled FR-FCFS under
//! the full Table I timing constraint set (tRCD, tCAS, tCCD, tWTR, tWR,
//! tRTP, tBL, tCWD, tRP, tRRD, tRAS, tRC, tFAW), an open-page row-buffer
//! policy, per-rank all-bank refresh (tREFI/tRFC), and a shared per-channel
//! data bus with read↔write turnaround effects. All times are in CPU
//! cycles at 3.2 GHz, exactly as Table I expresses them; commands issue on
//! the 1600 MHz command clock (every second CPU cycle).
//!
//! Energy is accounted per event (ACT/PRE pair, RD/WR burst, refresh) plus
//! background time so the `redcache-energy` crate can weight the counts
//! with per-technology constants.
//!
//! The emitted command stream is observable ([`DramSystem::take_issued_cmds`],
//! including per-rank REF commands) and can be validated online: enabling
//! [`DramConfig::audit`] attaches a [`TimingAuditor`] that re-checks every
//! command against the full constraint set as it issues and reports
//! violations plus per-channel command histograms through
//! [`DramSystem::audit_stats`]. See the `audit` module docs.
//!
//! # Example
//!
//! ```
//! use redcache_dram::{DramConfig, DramSystem, TxnKind};
//! use redcache_types::PhysAddr;
//!
//! let mut dram = DramSystem::new(DramConfig::ddr4_table1());
//! let txn = dram.enqueue(PhysAddr::new(0x40), TxnKind::Read, 7, 1, 0);
//! let mut now = 0;
//! while dram.pending() > 0 {
//!     dram.tick(now);
//!     now += 1;
//! }
//! let done = dram.drain_completions();
//! assert_eq!(done[0].txn, txn);
//! assert_eq!(done[0].meta, 7);
//! ```

#![warn(missing_docs)]

mod audit;
mod bank;
mod channel;
mod config;
mod par;
mod queue;
pub mod reference;
mod scheduler;
mod stats;
mod system;
mod timing;
mod topology;

pub use audit::{AuditStats, CmdHistogram, TimingAuditor, TimingRule, ViolationRecord, ALL_RULES};
pub use config::{DramConfig, DramConfigBuilder};
pub use stats::{DramEnergyEvents, DramStats};
pub use system::{
    planned_lanes, Completion, DramSystem, DramSystemState, IssuedCmd, IssuedKind, TxnId, TxnKind,
};
pub use timing::TimingParams;
pub use topology::{AddressMapping, DramLoc, Topology};
