//! Readiness polling for the event-driven connection layer, with no
//! external crates: on Linux this is `epoll(7)` declared straight
//! through `extern "C"` (std already links libc, the same trick
//! [`crate::signals`] uses for `signal(2)`); on other unixes it
//! degrades to a `poll(2)` emulation with the identical API. Non-unix
//! builds compile the serve crate without this module and fall back to
//! the threaded engine.
//!
//! The surface is deliberately tiny — add/modify/delete one fd with a
//! `u64` token plus a level-triggered wait — because that is all the
//! event loop in [`crate::server`] needs. Level-triggered semantics
//! keep the loop honest: nothing is lost if a readiness notification
//! is only partially consumed.

use std::io;
use std::os::unix::io::RawFd;

/// Readiness interest for one registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Self = Self {
        readable: true,
        writable: false,
    };
    /// Read+write interest — used while a response is partially
    /// flushed.
    pub const READ_WRITE: Self = Self {
        readable: true,
        writable: true,
    };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (includes peer half-close / pending EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup — the connection should be read to EOF and
    /// closed.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    // The kernel packs epoll_event on x86-64 only (uapi
    // `__EPOLL_PACKED`); every other architecture uses natural
    // alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// A level-triggered `epoll(7)` instance.
    pub struct Poller {
        epfd: RawFd,
    }

    // The epoll fd is just an integer capability; all operations on it
    // are kernel-side thread-safe.
    unsafe impl Send for Poller {}

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    impl Poller {
        /// Creates a fresh epoll instance (close-on-exec).
        pub fn new() -> io::Result<Self> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Self { epfd })
        }

        /// Registers `fd` under `token` with the given interest.
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
        }

        /// Changes a registered fd's token/interest.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
        }

        /// Unregisters `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            // Pre-2.6.9 kernels required a non-null event for DEL; a
            // dummy keeps the call portable.
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        /// Blocks up to `timeout_ms` (`-1` = forever) and fills `out`
        /// with ready events. EINTR yields an empty set, not an error.
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            const MAX_EVENTS: usize = 256;
            let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let n = loop {
                match cvt(unsafe {
                    epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => break 0,
                    Err(e) => return Err(e),
                }
            };
            out.clear();
            for ev in &raw[..n] {
                // Copy out of the (possibly packed) struct before use.
                let events = ev.events;
                let data = ev.data;
                out.push(Event {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! `poll(2)` emulation for non-Linux unixes: a registry of
    //! (fd, token, interest) rebuilt into a `pollfd` array per wait.
    //! O(n) per call, which is fine for the connection counts these
    //! hosts see; Linux gets the real epoll above.
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        // nfds_t is `unsigned int` on the BSD family this fallback
        // targets.
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
    }

    /// A `poll(2)`-backed stand-in with the epoll `Poller`'s API.
    pub struct Poller {
        registry: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    impl Poller {
        /// Creates an empty registry.
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                registry: Mutex::new(Vec::new()),
            })
        }

        /// Registers `fd` under `token` with the given interest.
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap();
            if reg.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            reg.push((fd, token, interest));
            Ok(())
        }

        /// Changes a registered fd's token/interest.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap();
            match reg.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    slot.1 = token;
                    slot.2 = interest;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Unregisters `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap();
            let before = reg.len();
            reg.retain(|&(f, _, _)| f != fd);
            if reg.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        /// Blocks up to `timeout_ms` (`-1` = forever) and fills `out`
        /// with ready events. EINTR yields an empty set, not an error.
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let snapshot: Vec<(RawFd, u64, Interest)> = self.registry.lock().unwrap().clone();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: if interest.writable {
                        POLLIN | POLLOUT
                    } else {
                        POLLIN
                    },
                    revents: 0,
                })
                .collect();
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u32, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    out.clear();
                    return Ok(());
                }
                return Err(e);
            }
            out.clear();
            for (pfd, &(_, token, _)) in fds.iter().zip(&snapshot) {
                if pfd.revents != 0 {
                    out.push(Event {
                        token,
                        readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

pub use sys::Poller;

/// Convenience: registers read-only interest.
pub fn add_readable(p: &Poller, fd: RawFd, token: u64) -> io::Result<()> {
    p.add(fd, token, Interest::READ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        add_readable(&poller, listener.as_raw_fd(), 7).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no client yet, nothing may be ready");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller.wait(&mut events, 2_000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn write_interest_toggles_and_delete_unregisters() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(server_side.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "idle socket with read interest only");

        // An empty socket buffer is immediately writable once OUT
        // interest is registered.
        poller
            .modify(server_side.as_raw_fd(), 1, Interest::READ_WRITE)
            .unwrap();
        poller.wait(&mut events, 2_000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        // After delete, even incoming data wakes nothing.
        poller.delete(server_side.as_raw_fd()).unwrap();
        client.write_all(b"ping").unwrap();
        poller.wait(&mut events, 50).unwrap();
        assert!(events.is_empty(), "deleted fd must not produce events");
    }
}
