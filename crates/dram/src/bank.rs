//! Per-bank and per-rank timing state machines.

use redcache_types::Cycle;
use std::collections::VecDeque;

/// Timing state of one DRAM bank (open-page policy).
///
/// Rather than an explicit state enum, the bank tracks the earliest cycle
/// at which each command class becomes legal; the scheduler consults
/// these and the open-row register.
#[derive(Debug, Clone)]
pub(crate) struct Bank {
    /// Currently open row, if any.
    pub open_row: Option<u64>,
    /// Earliest cycle an ACT may issue (tRC from last ACT, tRP from PRE).
    pub ready_act: Cycle,
    /// Earliest cycle a column command may issue (tRCD from ACT).
    pub ready_col: Cycle,
    /// Earliest cycle a PRE may issue (tRAS from ACT, tRTP from RD,
    /// write recovery after WR).
    pub ready_pre: Cycle,
}

impl Bank {
    pub(crate) fn new() -> Self {
        Self {
            open_row: None,
            ready_act: 0,
            ready_col: 0,
            ready_pre: 0,
        }
    }
}

/// Timing state shared by all banks of one rank.
#[derive(Debug, Clone)]
pub(crate) struct Rank {
    /// Issue times of recent ACTs, pruned to the tFAW window.
    pub act_times: VecDeque<Cycle>,
    /// Earliest next ACT anywhere in the rank (tRRD).
    pub ready_act: Cycle,
    /// Earliest next read command (end of write data + tWTR).
    pub ready_read: Cycle,
    /// Next scheduled refresh.
    pub next_refresh: Cycle,
    /// End of the refresh currently in progress (0 when none yet).
    pub refreshing_until: Cycle,
}

impl Rank {
    pub(crate) fn new(first_refresh: Cycle) -> Self {
        Self {
            act_times: VecDeque::with_capacity(4),
            ready_act: 0,
            ready_read: 0,
            next_refresh: first_refresh,
            refreshing_until: 0,
        }
    }

    /// True while the rank is executing a refresh at `now`.
    pub(crate) fn is_refreshing(&self, now: Cycle) -> bool {
        now < self.refreshing_until
    }

    /// Drops ACT timestamps that left the tFAW window ending at `now`.
    pub(crate) fn prune_faw(&mut self, now: Cycle, t_faw: Cycle) {
        while let Some(&t) = self.act_times.front() {
            if t + t_faw <= now {
                self.act_times.pop_front();
            } else {
                break;
            }
        }
    }

    /// True when a new ACT at `now` would keep at most four ACTs within
    /// any tFAW window.
    pub(crate) fn faw_allows_act(&mut self, now: Cycle, t_faw: Cycle) -> bool {
        self.prune_faw(now, t_faw);
        self.act_times.len() < 4
    }
}

redcache_types::wire_struct!(Bank {
    open_row,
    ready_act,
    ready_col,
    ready_pre,
});
redcache_types::wire_struct!(Rank {
    act_times,
    ready_act,
    ready_read,
    next_refresh,
    refreshing_until,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bank_is_closed_and_ready() {
        let b = Bank::new();
        assert!(b.open_row.is_none());
        assert_eq!(b.ready_act, 0);
    }

    #[test]
    fn faw_limits_to_four_acts() {
        let mut r = Rank::new(1000);
        let t_faw = 181;
        for i in 0..4 {
            assert!(r.faw_allows_act(i * 10, t_faw));
            r.act_times.push_back(i * 10);
        }
        assert!(!r.faw_allows_act(35, t_faw));
        // After the first ACT (t=0) leaves the window the fifth is legal.
        assert!(r.faw_allows_act(0 + t_faw, t_faw));
    }

    #[test]
    fn refresh_window_reports_correctly() {
        let mut r = Rank::new(0);
        r.refreshing_until = 100;
        assert!(r.is_refreshing(50));
        assert!(!r.is_refreshing(100));
    }
}
