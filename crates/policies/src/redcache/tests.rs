//! Behavioural tests for the RedCache controller family.

use super::*;
use crate::controller::{PolicyConfig, PolicyKind};
use redcache_types::{CoreId, ReqId};

fn drive(c: &mut RedCacheController, from: Cycle) -> (Vec<CompletedReq>, Cycle) {
    let mut done = Vec::new();
    let mut now = from;
    while c.pending() > 0 {
        c.tick(now, &mut done);
        now += 1;
        assert!(now < 5_000_000, "controller deadlock");
    }
    // One extra tick drains any synchronously completed requests.
    c.tick(now, &mut done);
    (done, now + 1)
}

fn ctl(variant: RedVariant) -> RedCacheController {
    RedCacheController::new(
        &PolicyConfig::scaled(PolicyKind::Red(variant)),
        RedConfig::for_variant(variant),
    )
}

fn ctl_with(variant: RedVariant, f: impl FnOnce(&mut RedConfig)) -> RedCacheController {
    let mut rc = RedConfig::for_variant(variant);
    f(&mut rc);
    RedCacheController::new(&PolicyConfig::scaled(PolicyKind::Red(variant)), rc)
}

fn read(c: &mut RedCacheController, id: u64, line: u64, now: Cycle) -> (Vec<CompletedReq>, Cycle) {
    c.submit(
        MemRequest::read(ReqId(id), LineAddr::new(line), CoreId(0), now),
        now,
    );
    drive(c, now)
}

fn write(
    c: &mut RedCacheController,
    id: u64,
    line: u64,
    version: u64,
    now: Cycle,
) -> (Vec<CompletedReq>, Cycle) {
    c.submit(
        MemRequest::writeback(ReqId(id), LineAddr::new(line), CoreId(0), now, version),
        now,
    );
    drive(c, now)
}

#[test]
fn alpha_gate_bypasses_cold_pages() {
    // α = 4: the first three touches of a page bypass the HBM entirely.
    let mut c = ctl_with(RedVariant::Full, |rc| {
        rc.alpha.adapt = false;
        rc.alpha.initial = 4;
        rc.alpha.avg_divisor = 1;
        rc.refresh_bypass = false;
    });
    c.preload(LineAddr::new(1), 10);
    let mut now = 0;
    for i in 0..3u64 {
        let (done, t) = read(&mut c, i, 1, now);
        assert_eq!(done.last().unwrap().data_version, 10);
        now = t;
    }
    assert_eq!(c.stats().hbm_bypasses, 3);
    assert_eq!(
        c.stats().hbm_probes,
        0,
        "no HBM traffic before the page qualifies"
    );
    // Fourth touch qualifies the page: probe + miss + fill.
    let (_, t) = read(&mut c, 3, 1, now);
    assert_eq!(c.stats().hbm_probes, 1);
    assert_eq!(c.stats().fills, 1);
    // Fifth: HBM hit.
    read(&mut c, 4, 1, t);
    assert_eq!(c.stats().hbm_hits, 1);
}

#[test]
fn reads_after_writes_remain_correct_across_bypass_paths() {
    let mut c = ctl_with(RedVariant::Full, |rc| {
        rc.alpha.adapt = false;
        rc.alpha.initial = 2;
        rc.alpha.avg_divisor = 1;
    });
    let mut now = 0;
    // Bypassed write (page cold), then bypassed read must see it.
    let (_, t) = write(&mut c, 1, 5, 100, now);
    now = t;
    let (done, t) = read(&mut c, 2, 5, now);
    assert_eq!(done.last().unwrap().data_version, 100);
    now = t;
    // Page now eligible: miss+fill, then hit returns the same data.
    let (done, t) = read(&mut c, 3, 5, now);
    assert_eq!(done.last().unwrap().data_version, 100);
    now = t;
    let (done, _) = read(&mut c, 4, 5, now);
    assert_eq!(done.last().unwrap().data_version, 100);
}

#[test]
fn gamma_invalidates_on_last_write_and_routes_to_ddr() {
    // γ fixed at 3, α disabled: blocks die on the write after 3 reuses.
    let mut c = ctl_with(RedVariant::Gamma, |rc| {
        rc.gamma.adapt = false;
        rc.gamma.initial = 3;
    });
    c.preload(LineAddr::new(7), 1);
    let mut now = 0;
    let (_, t) = read(&mut c, 1, 7, now); // miss + fill (r=0)
    now = t;
    for i in 0..3u64 {
        let (_, t) = read(&mut c, 2 + i, 7, now); // hits: r → 1,2,3
        now = t;
    }
    let ddr_writes_before = c.stats().ddr_writes;
    let (_, t) = write(&mut c, 9, 7, 55, now); // r → 4 ≥ γ: invalidate
    now = t;
    assert_eq!(c.stats().gamma_invalidations, 1);
    assert_eq!(c.stats().ddr_writes, ddr_writes_before + 1);
    // The block is gone: next read misses, and sees the routed data.
    let probes_before = c.stats().hbm_misses;
    let (done, _) = read(&mut c, 10, 7, now);
    assert_eq!(c.stats().hbm_misses, probes_before + 1);
    assert_eq!(done.last().unwrap().data_version, 55);
}

#[test]
fn write_miss_with_dirty_victim_bypasses() {
    let mut c = ctl_with(RedVariant::Basic, |rc| {
        rc.alpha.adapt = false;
        rc.alpha.initial = 1;
        rc.alpha.avg_divisor = 1; // everything eligible after first touch
        rc.gamma.adapt = false;
        rc.gamma.initial = 200; // never invalidate
    });
    let sets = c.tags.sets() as u64;
    let mut now = 0;
    // Make block A dirty in HBM (write twice: first qualifies the page).
    let (_, t) = write(&mut c, 1, 3, 11, now);
    now = t;
    let (_, t) = write(&mut c, 2, 3, 12, now);
    now = t;
    assert!(c.tags.entry(LineAddr::new(3)).unwrap().dirty);
    // A write to the conflicting block B must bypass (victim dirty).
    let b = 3 + sets;
    let (_, t) = write(&mut c, 3, b, 99, now); // qualifies B's page
    now = t;
    let (_, t) = write(&mut c, 4, b, 100, now);
    now = t;
    assert!(
        c.tags.contains(LineAddr::new(3)),
        "dirty victim must not be disturbed"
    );
    assert!(!c.tags.contains(LineAddr::new(b)));
    // Both blocks' data must be readable.
    let (done, t2) = read(&mut c, 5, b, now);
    assert_eq!(done.last().unwrap().data_version, 100);
    let (done, _) = read(&mut c, 6, 3, t2);
    assert_eq!(done.last().unwrap().data_version, 12);
}

#[test]
fn rcu_defers_updates_and_drains_on_idle() {
    let mut c = ctl_with(RedVariant::Full, |rc| {
        rc.alpha.adapt = false;
        rc.alpha.initial = 1;
        rc.alpha.avg_divisor = 1;
        rc.gamma.adapt = false;
        rc.gamma.initial = 200;
        rc.rcu_block_cache = false; // isolate the drain mechanics
        rc.refresh_bypass = false;
    });
    let mut now = 0;
    let (_, t) = read(&mut c, 1, 3, now); // α=1: first touch misses + fills
    now = t;
    let (_, t) = read(&mut c, 2, 3, now); // hit → RCU enqueue
    now = t;
    let (_, t) = read(&mut c, 3, 3, now); // hit → RCU enqueue
    now = t;
    let s = c.rcu_stats();
    assert_eq!(s.enqueued, 2);
    // drive() ran the queue dry, so the idle-drain condition fired.
    assert!(s.idle_drains >= 1, "idle drain expected: {s:?}");
    assert_eq!(s.forced_drains, 0);
    assert!(c.rcu_stats().cheap_fraction() >= 1.0 - 1e-9);
    let _ = now;
}

#[test]
fn red_basic_pays_immediate_update_writes() {
    let mut basic = ctl_with(RedVariant::Basic, |rc| {
        rc.alpha.adapt = false;
        rc.alpha.initial = 1;
        rc.alpha.avg_divisor = 1;
        rc.gamma.adapt = false;
        rc.gamma.initial = 200;
    });
    let mut insitu = ctl_with(RedVariant::InSitu, |rc| {
        rc.alpha.adapt = false;
        rc.alpha.initial = 1;
        rc.alpha.avg_divisor = 1;
        rc.gamma.adapt = false;
        rc.gamma.initial = 200;
    });
    for c in [&mut basic, &mut insitu] {
        let mut now = 0;
        for i in 0..10u64 {
            let (_, t) = read(c, i, 3, now);
            now = t;
        }
    }
    let wb = basic.hbm_stats().unwrap().energy.wr_bursts;
    let wi = insitu.hbm_stats().unwrap().energy.wr_bursts;
    assert!(
        wb > wi + 5,
        "Red-Basic must write r-counts back ({wb} vs {wi})"
    );
}

#[test]
fn rcu_block_cache_serves_repeated_reads_without_hbm() {
    let mut c = ctl_with(RedVariant::Full, |rc| {
        rc.alpha.adapt = false;
        rc.alpha.initial = 1;
        rc.alpha.avg_divisor = 1;
        rc.gamma.adapt = false;
        rc.gamma.initial = 200;
        rc.refresh_bypass = false;
    });
    let mut now = 0;
    for i in 0..3u64 {
        let (_, t) = read(&mut c, i, 3, now);
        now = t;
    }
    // Third read hit should find the block parked in the RCU queue…
    // unless the idle drain already flushed it between requests. Issue
    // two back-to-back reads without draining in between.
    c.submit(
        MemRequest::read(ReqId(100), LineAddr::new(3), CoreId(0), now),
        now,
    );
    c.submit(
        MemRequest::read(ReqId(101), LineAddr::new(3), CoreId(0), now),
        now,
    );
    let (done, _) = drive(&mut c, now);
    assert_eq!(done.len(), 2);
    assert!(c.rcu_stats().block_cache_hits >= 1, "{:?}", c.rcu_stats());
}

#[test]
fn variants_report_their_kind() {
    for v in [
        RedVariant::Alpha,
        RedVariant::Gamma,
        RedVariant::Basic,
        RedVariant::InSitu,
        RedVariant::Full,
    ] {
        let c = ctl(v);
        assert_eq!(c.kind(), PolicyKind::Red(v));
    }
    assert_eq!(RedVariant::Full.to_string(), "RedCache");
    assert_eq!(RedVariant::Alpha.to_string(), "Red-Alpha");
}

#[test]
fn extras_expose_adaptive_state() {
    let c = ctl(RedVariant::Full);
    let extras = c.extras();
    let keys: Vec<&str> = extras.iter().map(|(k, _)| *k).collect();
    assert!(keys.contains(&"alpha"));
    assert!(keys.contains(&"gamma"));
    assert!(keys.contains(&"rcu_cheap_fraction"));
}

#[test]
fn alpha_only_variant_never_invalidates() {
    let mut c = ctl_with(RedVariant::Alpha, |rc| {
        rc.alpha.adapt = false;
        rc.alpha.initial = 1;
        rc.alpha.avg_divisor = 1;
    });
    let mut now = 0;
    for i in 0..20u64 {
        let (_, t) = read(&mut c, i, 3, now);
        now = t;
        let (_, t) = write(&mut c, 100 + i, 3, i, now);
        now = t;
    }
    assert_eq!(c.stats().gamma_invalidations, 0);
    assert_eq!(c.rcu_stats().enqueued, 0);
}

#[test]
fn mixed_stream_no_stale_reads() {
    // Randomised little soak: every read must observe the last write.
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut c = ctl(RedVariant::Full);
    let mut rng = SmallRng::seed_from_u64(42);
    let mut shadow = std::collections::HashMap::new();
    let mut now = 0;
    let mut version = 1000u64;
    for i in 0..400u64 {
        let line = rng.gen_range(0..64u64) * 17;
        if rng.gen_bool(0.4) {
            version += 1;
            shadow.insert(line, version);
            let (_, t) = write(&mut c, i, line, version, now);
            now = t;
        } else {
            let (done, t) = read(&mut c, i, line, now);
            let expect = shadow.get(&line).copied().unwrap_or(0);
            assert_eq!(
                done.last().unwrap().data_version,
                expect,
                "stale read of line {line} at iteration {i}"
            );
            now = t;
        }
    }
}
