//! Integration tests for the runtime timing-audit subsystem: fault
//! injection (proving the auditor actually fires on illegal commands),
//! histogram cross-checks against the energy event counters, and the
//! runtime enable/disable toggle.

use redcache_dram::{DramConfig, DramLoc, DramSystem, IssuedCmd, IssuedKind, TimingRule, TxnKind};
use redcache_types::PhysAddr;

fn audited_config() -> DramConfig {
    DramConfig::ddr4_scaled(64 << 20)
        .to_builder()
        .refresh_enabled(true)
        .audit(true)
        .build()
        .expect("preset-derived config validates")
}

/// Drives `n` mixed transactions to completion and returns the system
/// with its auditor state intact.
fn run_workload(mut d: DramSystem, n: u64) -> (DramSystem, u64) {
    let capacity = 64 << 20;
    let mut now = 0;
    for i in 0..n {
        let kind = if i % 3 == 0 {
            TxnKind::Write
        } else {
            TxnKind::Read
        };
        let addr = (i * 0x1_2345) % capacity;
        d.enqueue(PhysAddr::new(addr), kind, i, 1, now);
        d.tick(now);
        now += 1;
    }
    while d.pending() > 0 {
        d.tick(now);
        now += 1;
        assert!(now < 10_000_000, "scheduler deadlock");
    }
    (d, now)
}

#[test]
fn legal_workload_audits_clean() {
    let (d, _) = run_workload(DramSystem::new(audited_config()), 200);
    let a = d.audit_stats().expect("audit enabled");
    assert!(a.cmds_audited > 0, "auditor saw no commands");
    assert!(
        a.clean(),
        "unexpected violations: first {:?}",
        a.first_violation
    );
    assert_eq!(d.stats().audit_violations, 0);
}

#[test]
fn injected_read_to_closed_bank_is_reported() {
    // A fresh system: every bank is deterministically closed, so a
    // column command without a preceding ACT can only trip the
    // bank-state rule (the cycle is clock-aligned and no other shadow
    // state exists yet).
    let mut d = DramSystem::new(audited_config());
    assert!(d.audit_stats().unwrap().clean());

    let cycle = 2; // on the command clock (divisor 2)
    let cmd = IssuedCmd {
        kind: IssuedKind::Read,
        loc: DramLoc {
            channel: 0,
            rank: 0,
            bank: 7,
            row: 1,
            col: 0,
        },
        cycle,
    };
    d.inject_raw_cmd(cmd);

    let a = d.audit_stats().unwrap();
    assert!(!a.clean(), "auditor missed the injected illegal command");
    assert_eq!(a.violations, 1);
    assert!(a.rule_count(TimingRule::BankState) >= 1);
    let first = a
        .first_violation
        .as_ref()
        .expect("first violation recorded");
    assert_eq!(first.cmd.cycle, cycle);
    assert_eq!(first.cmd.kind, IssuedKind::Read);
    // The aggregate counter in DramStats mirrors the auditor.
    assert_eq!(d.stats().audit_violations, 1);
}

#[test]
fn injected_off_clock_activate_is_reported() {
    let mut d = DramSystem::new(audited_config());
    let cmd = IssuedCmd {
        kind: IssuedKind::Activate,
        loc: DramLoc {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 0,
            col: 0,
        },
        cycle: 3, // cmd_clock_divisor is 2: off the command clock
    };
    d.inject_raw_cmd(cmd);
    let a = d.audit_stats().unwrap();
    assert!(a.rule_count(TimingRule::ClockAlign) >= 1);
    assert_eq!(d.stats().audit_violations, a.violations);
}

#[test]
fn histograms_agree_with_energy_event_counts() {
    let (d, _) = run_workload(DramSystem::new(audited_config()), 300);
    let a = d.audit_stats().unwrap();
    let h = a.total_histogram();
    let e = &d.stats().energy;
    // The auditor counts commands independently as they stream past; the
    // energy counters are kept by the scheduler. They must agree.
    assert_eq!(h.acts, e.acts, "ACT counts diverge");
    assert_eq!(h.pres, e.pres, "PRE counts diverge");
    assert_eq!(h.reads, e.rd_bursts, "RD counts diverge");
    assert_eq!(h.writes, e.wr_bursts, "WR counts diverge");
    assert_eq!(h.refreshes, e.refreshes, "REF counts diverge");
    assert!(h.bus_busy_cycles > 0);
}

#[test]
fn audit_can_be_toggled_at_runtime() {
    let mut cfg = audited_config();
    cfg.audit = false;
    let mut d = DramSystem::new(cfg);
    assert!(d.audit_stats().is_none(), "audit off must expose no stats");

    d.set_timing_audit(true);
    let (mut d, _) = run_workload(d, 40);
    let a = d.audit_stats().expect("audit enabled at runtime");
    assert!(a.cmds_audited > 0);
    assert!(a.clean());

    d.set_timing_audit(false);
    assert!(d.audit_stats().is_none(), "disabling drops the auditor");
}

#[test]
fn reset_stats_clears_audit_counters() {
    let mut d = DramSystem::new(audited_config());
    d.inject_raw_cmd(IssuedCmd {
        kind: IssuedKind::Read,
        loc: DramLoc {
            channel: 0,
            rank: 0,
            bank: 7,
            row: 0,
            col: 0,
        },
        cycle: 2,
    });
    assert!(!d.audit_stats().unwrap().clean());
    d.reset_stats();
    let a = d.audit_stats().unwrap();
    assert_eq!(a.cmds_audited, 0);
    assert!(a.clean());
    assert!(a.first_violation.is_none());
    assert_eq!(d.stats().audit_violations, 0);
}

#[test]
fn audit_does_not_perturb_simulation_results() {
    let mut on_cfg = audited_config();
    on_cfg.audit = true;
    let mut off_cfg = audited_config();
    off_cfg.audit = false;
    let (mut d_on, end_on) = run_workload(DramSystem::new(on_cfg), 150);
    let (mut d_off, end_off) = run_workload(DramSystem::new(off_cfg), 150);
    assert_eq!(end_on, end_off, "audit changed simulated time");
    let mut c_on = d_on.drain_completions();
    let mut c_off = d_off.drain_completions();
    c_on.sort_by_key(|c| c.meta);
    c_off.sort_by_key(|c| c.meta);
    assert_eq!(c_on, c_off, "audit changed completion timing");
    assert_eq!(d_on.stats().energy, d_off.stats().energy);
}
