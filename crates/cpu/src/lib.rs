//! Multicore CPU front end for the RedCache reproduction.
//!
//! The paper evaluates a sixteen-core, 4-issue out-of-order CPU with
//! 256-entry reorder buffers (Table I), simulated in a heavily modified
//! ESESC. Following DESIGN.md §1, this crate substitutes a
//! **ROB-occupancy interval model**: each core consumes a memory-access
//! trace, dispatches `issue_width` instructions per cycle, overlaps
//! outstanding loads up to its ROB window and per-core MSHR budget, and
//! stalls exactly when a load older than the window has not returned.
//! This reproduces the memory-level-parallelism and stall behaviour that
//! DRAM-cache policies are sensitive to, at a tiny fraction of the cost
//! of pipeline-accurate simulation.
//!
//! # Example
//!
//! ```
//! use redcache_cpu::{Access, Core, CoreConfig, Poll};
//! use redcache_types::{MemOp, PhysAddr};
//!
//! let trace = vec![Access { op: MemOp::Load, addr: PhysAddr::new(64), gap: 10 }];
//! let mut core = Core::new(CoreConfig::table1(), trace);
//! match core.poll(0) {
//!     Poll::NotYet(ready_at) => assert!(ready_at > 0), // gap cycles first
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

mod core_model;
mod trace;

pub use core_model::{Core, CoreConfig, CoreState, LoadToken, Poll};
pub use trace::{Access, TraceStats};
