//! `redcache-serve` — thin CLI client for `redcache-served`.
//!
//! ```text
//! redcache-serve [--addr HOST:PORT] submit [--workload W] [--policy P]
//!                [--preset NAME] [--seed N] [--budget N] [--shrink N]
//!                [--threads N] [--epoch-cycles N] [--hold-ms N] [--wait]
//! redcache-serve [--addr HOST:PORT] status <id> | report <id>
//!                | timeseries <id> | cancel <id> | wait <id>
//!                | list | metrics | health | shutdown
//! ```

use redcache_serve::client::HttpResult;
use redcache_serve::{Client, JobRequest, JobView};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: redcache-serve [--addr HOST:PORT] COMMAND\n\
         commands:\n\
         \x20 submit [--workload W] [--policy P] [--preset NAME] [--seed N]\n\
         \x20        [--budget N] [--shrink N] [--threads N] [--epoch-cycles N]\n\
         \x20        [--hold-ms N] [--wait]     submit a job (prints its JobView)\n\
         \x20 status <id>                       one job's status\n\
         \x20 report <id>                       the versioned result envelope\n\
         \x20 timeseries <id>                   epoch series as JSON Lines\n\
         \x20 wait <id>                         block until the job is terminal\n\
         \x20 cancel <id>                       cancel a queued job\n\
         \x20 list                              all jobs\n\
         \x20 metrics                           Prometheus text\n\
         \x20 health                            liveness + drain state\n\
         \x20 shutdown                          begin graceful drain"
    );
    std::process::exit(2)
}

/// Prints the response body and exits non-zero on HTTP errors.
fn finish(res: HttpResult) -> ! {
    println!("{}", res.text().trim_end());
    std::process::exit(if res.status < 400 { 0 } else { 1 })
}

fn id_arg(it: &mut impl Iterator<Item = String>) -> u64 {
    it.next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage())
}

fn submit(client: &Client, mut it: impl Iterator<Item = String>) -> ! {
    let mut job = JobRequest {
        workload: "hist".into(),
        ..JobRequest::default()
    };
    let mut wait = false;
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--workload" | "-w" => job.workload = val(),
            "--policy" | "-p" => job.policy = Some(val()),
            "--preset" => job.preset = Some(val()),
            "--seed" => job.seed = Some(val().parse().unwrap_or_else(|_| usage())),
            "--budget" | "-b" => job.budget = Some(val().parse().unwrap_or_else(|_| usage())),
            "--shrink" | "-s" => job.shrink = Some(val().parse().unwrap_or_else(|_| usage())),
            "--threads" => job.threads = Some(val().parse().unwrap_or_else(|_| usage())),
            "--epoch-cycles" => {
                job.epoch_cycles = Some(val().parse().unwrap_or_else(|_| usage()));
            }
            "--hold-ms" => job.hold_ms = Some(val().parse().unwrap_or_else(|_| usage())),
            "--wait" => wait = true,
            _ => usage(),
        }
    }
    let res = client.submit(&job).unwrap_or_else(die);
    if res.status != 202 || !wait {
        finish(res);
    }
    let view: JobView = res.json().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1)
    });
    let done = client
        .wait(view.id, Duration::from_secs(600))
        .unwrap_or_else(die);
    println!(
        "{}",
        serde_json::to_string_pretty(&done).expect("view serializes")
    );
    std::process::exit(0)
}

fn die<T>(e: std::io::Error) -> T {
    eprintln!("error: {e}");
    std::process::exit(1)
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("--addr") {
        it.next();
        addr = it.next().unwrap_or_else(|| usage());
    }
    let client = Client::new(addr);
    let Some(cmd) = it.next() else { usage() };
    match cmd.as_str() {
        "submit" => submit(&client, it),
        "status" => finish(client.job(id_arg(&mut it)).unwrap_or_else(die)),
        "report" => finish(client.report(id_arg(&mut it)).unwrap_or_else(die)),
        "timeseries" => finish(client.timeseries(id_arg(&mut it)).unwrap_or_else(die)),
        "cancel" => finish(client.cancel(id_arg(&mut it)).unwrap_or_else(die)),
        "wait" => {
            let view = client
                .wait(id_arg(&mut it), Duration::from_secs(600))
                .unwrap_or_else(die);
            println!(
                "{}",
                serde_json::to_string_pretty(&view).expect("view serializes")
            );
        }
        "list" => finish(client.jobs().unwrap_or_else(die)),
        "metrics" => finish(client.metrics().unwrap_or_else(die)),
        "health" => finish(client.healthz().unwrap_or_else(die)),
        "shutdown" => finish(client.shutdown().unwrap_or_else(die)),
        "--help" | "-h" => usage(),
        _ => usage(),
    }
}
